//! Prediction-accuracy evaluation harness (§6 of the paper).
//!
//! Drives the three systems the paper compares — IDES (SVD or NMF), ICS
//! (Lipschitz+PCA) and GNP (Simplex Downhill) — through the same protocol:
//! build a model from the landmark-to-landmark matrix, join every ordinary
//! host from its measured distances to/from the landmarks, then score
//! predictions on ordinary-to-ordinary pairs **that were never measured by
//! the model** using the modified relative error (Eq. 10).
//!
//! # Batched, sharded pipeline
//!
//! Every evaluator runs the same three-stage pipeline:
//!
//! 1. **Gather** — the ordinary hosts with complete landmark measurements
//!    are collected and their measured rows packed into `hosts x k`
//!    matrices;
//! 2. **Batch join/embed** — the whole batch is joined in one multi-RHS
//!    solve ([`crate::projection::join_hosts_into`] for IDES) or embedded
//!    through the estimator-level [`BatchEmbed`] entry point (ICS's PCA
//!    GEMM, GNP's per-host simplex fits);
//! 3. **Score** — the `O(n²)` ordinary-pair sweep reads coordinate rows
//!    straight out of the batch matrices, with no per-host vector clones.
//!
//! With the `parallel` cargo feature, stages 2 and 3 are **sharded over
//! std scoped threads** (one shard per core; `IDES_LINALG_THREADS`
//! overrides the count). Sharding is deterministic and bit-identical to
//! the single-threaded sweep: every host's join/embedding depends only on
//! its own measurement row plus the shared landmark model, pair errors are
//! pure per-pair functions, and shard outputs are merged in fixed host
//! order — so the `errors` vector is byte-for-byte the same at any thread
//! count (asserted by `tests/parallel_eval.rs`).

use std::time::Instant;

use ides_datasets::DistanceMatrix;
use ides_linalg::Matrix;
use ides_mf::gnp::{GnpConfig, GnpModel};
use ides_mf::lipschitz::LipschitzPca;
use ides_mf::metrics::{modified_relative_error, Cdf};
use ides_mf::BatchEmbed;

use crate::error::{IdesError, Result};
use crate::projection::{BatchHostVectors, HostVectors, JoinWorkspace};
use crate::system::{IdesConfig, InformationServer};

/// Result of one prediction experiment.
#[derive(Debug, Clone)]
pub struct PredictionResult {
    /// Modified relative errors over the evaluated pairs.
    pub errors: Vec<f64>,
    /// Wall-clock seconds to build the model (landmark fit + all host joins).
    pub build_seconds: f64,
    /// Number of ordinary hosts joined.
    pub hosts_joined: usize,
    /// Number of evaluated (predicted) pairs.
    pub pairs_evaluated: usize,
}

impl PredictionResult {
    /// CDF over the prediction errors (copies the error slice; use
    /// [`PredictionResult::into_cdf`] when the result is no longer needed).
    pub fn cdf(&self) -> Cdf {
        Cdf::from_slice(&self.errors)
    }

    /// Consumes the result into a CDF over its errors without copying the
    /// error vector.
    pub fn into_cdf(self) -> Cdf {
        Cdf::new(self.errors)
    }
}

/// Number of shards the evaluation sweeps fan out to. Always 1 without the
/// `parallel` feature; with it, one per available core unless
/// `IDES_LINALG_THREADS` overrides (the same knob the GEMM kernels honor).
pub(crate) fn eval_threads() -> usize {
    #[cfg(feature = "parallel")]
    {
        std::env::var("IDES_LINALG_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&t| t >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|t| t.get())
                    .unwrap_or(1)
            })
    }
    #[cfg(not(feature = "parallel"))]
    {
        1
    }
}

/// Splits `n` items into at most `shards` contiguous ranges whose sizes
/// differ by at most one.
pub(crate) fn shard_ranges(n: usize, shards: usize) -> Vec<(usize, usize)> {
    let shards = shards.clamp(1, n.max(1));
    let base = n / shards;
    let extra = n % shards;
    let mut ranges = Vec::with_capacity(shards);
    let mut start = 0;
    for s in 0..shards {
        let len = base + usize::from(s < extra);
        ranges.push((start, start + len));
        start += len;
    }
    ranges
}

/// Runs `f` over contiguous shards of `items` — on scoped threads when the
/// `parallel` feature enables more than one shard, inline otherwise — and
/// returns the per-shard outputs **in shard order**. `f` receives each
/// shard slice plus its offset into `items`; because shards are contiguous
/// and merged in order, any per-item-independent `f` yields output
/// identical to a single-shard run.
pub(crate) fn map_shards<T, R, F>(items: &[T], f: F) -> Result<Vec<R>>
where
    T: Sync,
    R: Send,
    F: Fn(&[T], usize) -> Result<R> + Sync,
{
    map_shards_with(items, eval_threads(), f)
}

/// [`map_shards`] with an explicit shard/thread count instead of the
/// ambient [`eval_threads`] resolution — the hook callers with their own
/// parallelism policy (the epoch-DAG executor, the serial-vs-DAG benches
/// and determinism tests) drive. Spawns scoped std threads whenever
/// `threads > 1`, independent of the `parallel` feature (the feature only
/// governs the ambient default).
pub(crate) fn map_shards_with<T, R, F>(items: &[T], threads: usize, f: F) -> Result<Vec<R>>
where
    T: Sync,
    R: Send,
    F: Fn(&[T], usize) -> Result<R> + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return Ok(vec![f(items, 0)?]);
    }
    let ranges = shard_ranges(items.len(), threads);
    let mut slots: Vec<Option<Result<R>>> = Vec::new();
    slots.resize_with(ranges.len(), || None);
    std::thread::scope(|scope| {
        for (slot, &(lo, hi)) in slots.iter_mut().zip(&ranges) {
            let f = &f;
            scope.spawn(move || {
                *slot = Some(f(&items[lo..hi], lo));
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every shard thread ran"))
        .collect()
}

/// True when `host` measured distances to **and** from every landmark (the
/// paper's completeness filter for ordinary hosts).
fn measurements_complete(data: &DistanceMatrix, host: usize, landmarks: &[usize]) -> bool {
    landmarks
        .iter()
        .all(|&l| data.get(host, l).is_some() && data.get(l, host).is_some())
}

/// Packs the measured landmark rows of `hosts` (all previously checked
/// complete) into `hosts x k` out/in matrices, reusing the buffers'
/// capacity.
fn gather_measurements(
    data: &DistanceMatrix,
    hosts: &[usize],
    landmarks: &[usize],
    d_out: &mut Matrix,
    d_in: &mut Matrix,
) {
    d_out.reset_shape(hosts.len(), landmarks.len());
    d_in.reset_shape(hosts.len(), landmarks.len());
    for (r, &h) in hosts.iter().enumerate() {
        for (c, &l) in landmarks.iter().enumerate() {
            d_out[(r, c)] = data.get(h, l).expect("host filtered complete");
            d_in[(r, c)] = data.get(l, h).expect("host filtered complete");
        }
    }
}

/// Ordinary hosts eligible for joining: those with complete measurements.
fn complete_hosts(data: &DistanceMatrix, landmarks: &[usize], ordinary: &[usize]) -> Vec<usize> {
    ordinary
        .iter()
        .copied()
        .filter(|&h| measurements_complete(data, h, landmarks))
        .collect()
}

/// Scores every ordered ordinary pair `(ids[i], ids[j])`, `i != j`, whose
/// true distance is observed and positive, in row-major `(i, j)` order.
/// `dist(i, j)` estimates the distance between batch members `i` and `j`.
///
/// Sharded over the first index under the `parallel` feature and merged in
/// shard order, so the returned error vector is byte-identical to the
/// sequential sweep.
fn score_pairs<F>(data: &DistanceMatrix, ids: &[usize], dist: F) -> Result<Vec<f64>>
where
    F: Fn(usize, usize) -> f64 + Sync,
{
    let shards = map_shards(ids, |shard, offset| {
        let mut errors = Vec::new();
        for (r, &hi) in shard.iter().enumerate() {
            let i = offset + r;
            for (j, &hj) in ids.iter().enumerate() {
                if i == j {
                    continue;
                }
                if let Some(actual) = data.get(hi, hj) {
                    if actual > 0.0 {
                        errors.push(modified_relative_error(actual, dist(i, j)));
                    }
                }
            }
        }
        Ok(errors)
    })?;
    Ok(shards.concat())
}

/// Merges per-shard coordinate matrices (same column count) in shard order.
fn vcat_shards(shards: Vec<Matrix>) -> Result<Matrix> {
    let mut merged: Option<Matrix> = None;
    for m in shards {
        merged = Some(match merged {
            None => m,
            Some(acc) => acc.vcat(&m)?,
        });
    }
    Ok(merged.unwrap_or_else(|| Matrix::zeros(0, 0)))
}

/// Runs the IDES prediction experiment on a square data set.
///
/// `landmarks` and `ordinary` index hosts of `data`; hosts whose landmark
/// measurements are incomplete are skipped (consistent with the paper's
/// filtering). Hosts are joined in shard-sized batches through the
/// multi-RHS join path and scored straight from the batch matrices; see
/// the module docs for the sharding/determinism contract.
pub fn evaluate_ides(
    data: &DistanceMatrix,
    landmarks: &[usize],
    ordinary: &[usize],
    config: IdesConfig,
) -> Result<PredictionResult> {
    let start = Instant::now();
    let lm = data.submatrix(landmarks, landmarks);
    let server = InformationServer::build(&lm, config)?;

    let ids = complete_hosts(data, landmarks, ordinary);
    let shards = map_shards(&ids, |hosts, _| {
        let mut d_out = Matrix::zeros(0, 0);
        let mut d_in = Matrix::zeros(0, 0);
        gather_measurements(data, hosts, landmarks, &mut d_out, &mut d_in);
        let mut ws = JoinWorkspace::new();
        let mut batch = BatchHostVectors::new();
        server.join_batch_into(&mut ws, &d_out, &d_in, &mut batch)?;
        Ok(batch)
    })?;
    let mut shards = shards.into_iter();
    let mut joined = shards.next().unwrap_or_default();
    for shard in shards {
        joined.extend_from(&shard)?;
    }
    let build_seconds = start.elapsed().as_secs_f64();

    let errors = score_pairs(data, &ids, |i, j| joined.distance(i, j))?;
    Ok(PredictionResult {
        pairs_evaluated: errors.len(),
        hosts_joined: ids.len(),
        errors,
        build_seconds,
    })
}

/// Runs the ICS (Lipschitz+PCA) prediction experiment: the landmark matrix
/// is embedded by PCA; ordinary hosts are embedded from their Lipschitz
/// rows (distances to landmarks) in per-shard batches — one GEMM per shard
/// through [`BatchEmbed`].
pub fn evaluate_ics(
    data: &DistanceMatrix,
    landmarks: &[usize],
    ordinary: &[usize],
    dim: usize,
) -> Result<PredictionResult> {
    let start = Instant::now();
    let lm = data.submatrix(landmarks, landmarks);
    let model = LipschitzPca::fit(&lm, dim)?;

    let ids = complete_hosts(data, landmarks, ordinary);
    let shards = map_shards(&ids, |hosts, _| {
        let mut d_out = Matrix::zeros(0, 0);
        let mut d_in = Matrix::zeros(0, 0);
        gather_measurements(data, hosts, landmarks, &mut d_out, &mut d_in);
        let seeds: Vec<u64> = hosts.iter().map(|&h| h as u64).collect();
        Ok(BatchEmbed::embed_batch(&model, &d_out, &seeds)?)
    })?;
    let coords = vcat_shards(shards)?;
    let build_seconds = start.elapsed().as_secs_f64();

    let errors = score_pairs(data, &ids, |i, j| {
        LipschitzPca::distance(coords.row(i), coords.row(j))
    })?;
    Ok(PredictionResult {
        pairs_evaluated: errors.len(),
        hosts_joined: ids.len(),
        errors,
        build_seconds,
    })
}

/// Runs the GNP prediction experiment (Simplex Downhill embedding). Host
/// fits are independent simplex runs seeded by host id, dispatched through
/// the same [`BatchEmbed`] shard driver as ICS.
pub fn evaluate_gnp(
    data: &DistanceMatrix,
    landmarks: &[usize],
    ordinary: &[usize],
    config: GnpConfig,
) -> Result<PredictionResult> {
    let start = Instant::now();
    let lm = data.submatrix(landmarks, landmarks);
    let model =
        GnpModel::fit_landmarks(&lm, config).map_err(|e| IdesError::InvalidInput(e.to_string()))?;

    let ids = complete_hosts(data, landmarks, ordinary);
    let shards = map_shards(&ids, |hosts, _| {
        let mut d_out = Matrix::zeros(0, 0);
        let mut d_in = Matrix::zeros(0, 0);
        gather_measurements(data, hosts, landmarks, &mut d_out, &mut d_in);
        let seeds: Vec<u64> = hosts.iter().map(|&h| h as u64).collect();
        model
            .fit_hosts(&d_out, config, &seeds)
            .map_err(|e| IdesError::InvalidInput(e.to_string()))
    })?;
    let coords = vcat_shards(shards)?;
    let build_seconds = start.elapsed().as_secs_f64();

    let errors = score_pairs(data, &ids, |i, j| {
        GnpModel::distance(coords.row(i), coords.row(j))
    })?;
    Ok(PredictionResult {
        pairs_evaluated: errors.len(),
        hosts_joined: ids.len(),
        errors,
        build_seconds,
    })
}

/// §6.2 robustness experiment: each ordinary host independently fails to
/// observe a random `unobserved_fraction` of the landmarks and joins
/// through the remainder.
///
/// Hosts are **grouped by identical observed-landmark subset** and each
/// distinct subset's reference subsystem is gathered and factored once
/// ([`crate::projection::join_hosts_subset_into`] through the shared
/// [`JoinWorkspace`]), extending the batched-join amortization to the
/// robustness path: at 0 % failures every host shares the full landmark
/// set (one factorization total), and at higher failure rates repeated
/// subsets still collapse to one factorization each. Per-host results are
/// **bit-identical** to the former one-join-per-host sweep, because the
/// batched solvers' per-row arithmetic is independent of the batch's row
/// count (asserted in `tests/grouped_failures.rs`).
///
/// Returns the modified relative errors over ordinary-pair predictions.
pub fn evaluate_ides_with_failures(
    data: &DistanceMatrix,
    landmarks: &[usize],
    ordinary: &[usize],
    config: IdesConfig,
    unobserved_fraction: f64,
    seed: u64,
) -> Result<PredictionResult> {
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    use std::collections::BTreeMap;
    if !(0.0..1.0).contains(&unobserved_fraction) {
        return Err(IdesError::InvalidInput(
            "unobserved fraction must be in [0, 1)".into(),
        ));
    }
    let start = Instant::now();
    let lm = data.submatrix(landmarks, landmarks);
    let server = InformationServer::build(&lm, config)?;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let m = landmarks.len();
    let keep = m - ((m as f64 * unobserved_fraction).round() as usize).min(m);

    // Pass 1: draw every host's observed subset from the sequential RNG
    // stream (host order fixes the stream, so the subsets are identical to
    // the former one-host-at-a-time sweep), then group hosts by subset.
    let mut idx: Vec<usize> = Vec::with_capacity(m);
    let mut hosts: Vec<usize> = Vec::new();
    let mut subsets: Vec<Vec<usize>> = Vec::new();
    for &h in ordinary {
        if !measurements_complete(data, h, landmarks) {
            continue;
        }
        idx.clear();
        idx.extend(0..m);
        idx.shuffle(&mut rng);
        idx.truncate(keep.max(1));
        idx.sort_unstable();
        hosts.push(h);
        subsets.push(idx.clone());
    }
    let mut groups: BTreeMap<&[usize], Vec<usize>> = BTreeMap::new();
    for (pos, subset) in subsets.iter().enumerate() {
        groups.entry(subset.as_slice()).or_default().push(pos);
    }

    // Pass 2: one gathered factorization per distinct subset serves all of
    // its hosts; a group whose plain solve is singular retries with a tiny
    // ridge (the paper still attempts the join), and only if that fails
    // too does the group fall back to individual joins so a pathological
    // host cannot sink its groupmates.
    let mut ws = JoinWorkspace::new();
    let mut d_out = Matrix::zeros(0, 0);
    let mut d_in = Matrix::zeros(0, 0);
    let mut batch = BatchHostVectors::new();
    let mut results: Vec<Option<HostVectors>> = vec![None; hosts.len()];
    let ridge_cfg = {
        let mut cfg = server.join_options();
        cfg.ridge = 1e-6;
        cfg
    };
    for (subset, members) in &groups {
        d_out.reset_shape(members.len(), subset.len());
        d_in.reset_shape(members.len(), subset.len());
        for (r, &pos) in members.iter().enumerate() {
            let h = hosts[pos];
            for (c, &i) in subset.iter().enumerate() {
                d_out[(r, c)] = data.get(h, landmarks[i]).expect("complete");
                d_in[(r, c)] = data.get(landmarks[i], h).expect("complete");
            }
        }
        let joined = match crate::projection::join_hosts_subset_into(
            &mut ws,
            server.model().x(),
            server.model().y(),
            subset,
            &d_out,
            &d_in,
            server.join_options(),
            &mut batch,
        ) {
            // Too few observations fails every group member identically, so
            // the ridge retry can stay batched (bit-identical to per-host
            // ridge joins). Any other failure is potentially per-host.
            Err(IdesError::TooFewObservations { .. }) => crate::projection::join_hosts_subset_into(
                &mut ws,
                server.model().x(),
                server.model().y(),
                subset,
                &d_out,
                &d_in,
                ridge_cfg,
                &mut batch,
            ),
            other => other,
        };
        match joined {
            Ok(()) => {
                for (r, &pos) in members.iter().enumerate() {
                    results[pos] = Some(batch.host(r));
                }
            }
            Err(_) => {
                // Per-host salvage, mirroring the pre-grouping sweep.
                for (r, &pos) in members.iter().enumerate() {
                    let result = server
                        .join_partial_with(&mut ws, subset, d_out.row(r), d_in.row(r))
                        .or_else(|_| {
                            crate::projection::join_host_subset_with(
                                &mut ws,
                                server.model().x(),
                                server.model().y(),
                                subset,
                                d_out.row(r),
                                d_in.row(r),
                                ridge_cfg,
                            )
                        });
                    if let Ok(v) = result {
                        results[pos] = Some(v);
                    }
                }
            }
        }
    }
    let mut ids: Vec<usize> = Vec::new();
    let mut joined: Vec<HostVectors> = Vec::new();
    for (pos, result) in results.into_iter().enumerate() {
        if let Some(v) = result {
            ids.push(hosts[pos]);
            joined.push(v);
        }
    }
    let build_seconds = start.elapsed().as_secs_f64();

    let errors = score_pairs(data, &ids, |i, j| joined[i].distance_to_host(&joined[j]))?;
    Ok(PredictionResult {
        pairs_evaluated: errors.len(),
        hosts_joined: ids.len(),
        errors,
        build_seconds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::split_landmarks;
    use ides_datasets::generators::{gnp_like, nlanr_like};

    #[test]
    fn ides_beats_ics_on_nlanr_like() {
        // Fig. 6(b): IDES more accurate than ICS on the NLANR-style set.
        let ds = nlanr_like(60, 21).unwrap();
        let (landmarks, ordinary) = split_landmarks(60, 20, 5);
        let ides = evaluate_ides(&ds.matrix, &landmarks, &ordinary, IdesConfig::new(8)).unwrap();
        let ics = evaluate_ics(&ds.matrix, &landmarks, &ordinary, 8).unwrap();
        let ides_med = ides.cdf().median();
        let ics_med = ics.cdf().median();
        assert!(
            ides_med < ics_med,
            "IDES median {ides_med} should beat ICS median {ics_med}"
        );
        assert_eq!(ides.hosts_joined, 40);
        assert_eq!(ides.pairs_evaluated, 40 * 39);
    }

    #[test]
    fn nmf_variant_runs_and_is_accurate() {
        let ds = nlanr_like(50, 22).unwrap();
        let (landmarks, ordinary) = split_landmarks(50, 20, 6);
        let r = evaluate_ides(&ds.matrix, &landmarks, &ordinary, IdesConfig::nmf(8)).unwrap();
        assert!(r.cdf().median() < 0.5, "NMF median {}", r.cdf().median());
    }

    #[test]
    fn failure_experiment_degrades_gracefully() {
        // Fig. 7 shape: more unobserved landmarks => error does not improve,
        // and with 0% failures it matches the basic architecture.
        let ds = nlanr_like(60, 23).unwrap();
        let (landmarks, ordinary) = split_landmarks(60, 20, 8);
        let base = evaluate_ides(&ds.matrix, &landmarks, &ordinary, IdesConfig::new(8)).unwrap();
        let f0 = evaluate_ides_with_failures(
            &ds.matrix,
            &landmarks,
            &ordinary,
            IdesConfig::new(8),
            0.0,
            1,
        )
        .unwrap();
        assert!((base.cdf().median() - f0.cdf().median()).abs() < 1e-9);
        let f6 = evaluate_ides_with_failures(
            &ds.matrix,
            &landmarks,
            &ordinary,
            IdesConfig::new(8),
            0.6,
            1,
        )
        .unwrap();
        assert!(
            f6.cdf().median() >= f0.cdf().median() * 0.8,
            "60% failures median {} vs baseline {}",
            f6.cdf().median(),
            f0.cdf().median()
        );
    }

    #[test]
    fn gnp_evaluation_runs() {
        let ds = gnp_like(19, 24).unwrap();
        let (landmarks, ordinary) = split_landmarks(19, 15, 9);
        let cfg = GnpConfig {
            landmark_evals: 20_000,
            host_evals: 2_000,
            ..GnpConfig::new(6)
        };
        let r = evaluate_gnp(&ds.matrix, &landmarks, &ordinary, cfg).unwrap();
        assert_eq!(r.hosts_joined, 4);
        assert_eq!(r.pairs_evaluated, 12);
        assert!(r.cdf().median().is_finite());
    }

    #[test]
    fn ides_is_much_faster_than_gnp() {
        // Table 1's headline: IDES builds in well under the GNP time.
        let ds = gnp_like(19, 25).unwrap();
        let (landmarks, ordinary) = split_landmarks(19, 15, 11);
        let ides = evaluate_ides(&ds.matrix, &landmarks, &ordinary, IdesConfig::new(8)).unwrap();
        let gnp = evaluate_gnp(
            &ds.matrix,
            &landmarks,
            &ordinary,
            GnpConfig {
                landmark_evals: 40_000,
                host_evals: 2_000,
                ..GnpConfig::new(8)
            },
        )
        .unwrap();
        assert!(
            ides.build_seconds * 5.0 < gnp.build_seconds,
            "IDES {}s vs GNP {}s",
            ides.build_seconds,
            gnp.build_seconds
        );
    }

    #[test]
    fn invalid_fraction_rejected() {
        let ds = gnp_like(10, 26).unwrap();
        let (landmarks, ordinary) = split_landmarks(10, 8, 12);
        assert!(evaluate_ides_with_failures(
            &ds.matrix,
            &landmarks,
            &ordinary,
            IdesConfig::new(4),
            1.0,
            0
        )
        .is_err());
    }
}
