//! Prediction-accuracy evaluation harness (§6 of the paper).
//!
//! Drives the three systems the paper compares — IDES (SVD or NMF), ICS
//! (Lipschitz+PCA) and GNP (Simplex Downhill) — through the same protocol:
//! build a model from the landmark-to-landmark matrix, join every ordinary
//! host from its measured distances to/from the landmarks, then score
//! predictions on ordinary-to-ordinary pairs **that were never measured by
//! the model** using the modified relative error (Eq. 10).

use std::time::Instant;

use ides_datasets::DistanceMatrix;
use ides_mf::gnp::{GnpConfig, GnpModel};
use ides_mf::lipschitz::LipschitzPca;
use ides_mf::metrics::{modified_relative_error, Cdf};

use crate::error::{IdesError, Result};
use crate::projection::{HostVectors, JoinWorkspace};
use crate::system::{IdesConfig, InformationServer};

/// Result of one prediction experiment.
#[derive(Debug, Clone)]
pub struct PredictionResult {
    /// Modified relative errors over the evaluated pairs.
    pub errors: Vec<f64>,
    /// Wall-clock seconds to build the model (landmark fit + all host joins).
    pub build_seconds: f64,
    /// Number of ordinary hosts joined.
    pub hosts_joined: usize,
    /// Number of evaluated (predicted) pairs.
    pub pairs_evaluated: usize,
}

impl PredictionResult {
    /// CDF over the prediction errors.
    pub fn cdf(&self) -> Cdf {
        Cdf::new(self.errors.clone())
    }
}

/// Measured landmark rows for one ordinary host, gathered into shared
/// buffers: fills `d_out`/`d_in` in place (parallel to the landmark index
/// list) and reports whether every landmark measurement was observed. The
/// evaluation sweeps call this once per host with shared buffers, so the
/// join loop performs no per-host measurement allocation.
fn landmark_rows_into(
    data: &DistanceMatrix,
    host: usize,
    landmarks: &[usize],
    d_out: &mut Vec<f64>,
    d_in: &mut Vec<f64>,
) -> bool {
    d_out.clear();
    d_in.clear();
    for &l in landmarks {
        let (Some(out), Some(inn)) = (data.get(host, l), data.get(l, host)) else {
            return false;
        };
        d_out.push(out);
        d_in.push(inn);
    }
    true
}

/// Runs the IDES prediction experiment on a square data set.
///
/// `landmarks` and `ordinary` index hosts of `data`; hosts whose landmark
/// measurements are incomplete are skipped (consistent with the paper's
/// filtering).
pub fn evaluate_ides(
    data: &DistanceMatrix,
    landmarks: &[usize],
    ordinary: &[usize],
    config: IdesConfig,
) -> Result<PredictionResult> {
    let start = Instant::now();
    let lm = data.submatrix(landmarks, landmarks);
    let server = InformationServer::build(&lm, config)?;

    // One workspace and one pair of measurement buffers for every join:
    // the per-host loop clones no factor matrices and reuses all scratch.
    let mut ws = JoinWorkspace::new();
    let mut d_out = Vec::with_capacity(landmarks.len());
    let mut d_in = Vec::with_capacity(landmarks.len());
    let mut joined: Vec<(usize, HostVectors)> = Vec::with_capacity(ordinary.len());
    for &h in ordinary {
        if landmark_rows_into(data, h, landmarks, &mut d_out, &mut d_in) {
            let v = server.join_with(&mut ws, &d_out, &d_in)?;
            joined.push((h, v));
        }
    }
    let build_seconds = start.elapsed().as_secs_f64();

    let mut errors = Vec::new();
    for (i, (hi, vi)) in joined.iter().enumerate() {
        for (j, (hj, vj)) in joined.iter().enumerate() {
            if i == j {
                continue;
            }
            if let Some(actual) = data.get(*hi, *hj) {
                if actual > 0.0 {
                    errors.push(modified_relative_error(actual, vi.distance_to_host(vj)));
                }
            }
        }
    }
    Ok(PredictionResult {
        pairs_evaluated: errors.len(),
        hosts_joined: joined.len(),
        errors,
        build_seconds,
    })
}

/// Runs the ICS (Lipschitz+PCA) prediction experiment: the landmark matrix
/// is embedded by PCA; ordinary hosts are embedded from their Lipschitz
/// rows (distances to landmarks).
pub fn evaluate_ics(
    data: &DistanceMatrix,
    landmarks: &[usize],
    ordinary: &[usize],
    dim: usize,
) -> Result<PredictionResult> {
    let start = Instant::now();
    let lm = data.submatrix(landmarks, landmarks);
    let model = LipschitzPca::fit(&lm, dim)?;
    let mut d_out = Vec::with_capacity(landmarks.len());
    let mut d_in = Vec::with_capacity(landmarks.len());
    let mut scratch = Vec::new();
    let mut joined: Vec<(usize, Vec<f64>)> = Vec::with_capacity(ordinary.len());
    for &h in ordinary {
        if landmark_rows_into(data, h, landmarks, &mut d_out, &mut d_in) {
            // The stored coordinates are the output; only the centering
            // scratch is shared across hosts.
            let mut coords = Vec::with_capacity(dim);
            model.embed_into(&d_out, &mut scratch, &mut coords)?;
            joined.push((h, coords));
        }
    }
    let build_seconds = start.elapsed().as_secs_f64();

    let mut errors = Vec::new();
    for (i, (hi, ci)) in joined.iter().enumerate() {
        for (j, (hj, cj)) in joined.iter().enumerate() {
            if i == j {
                continue;
            }
            if let Some(actual) = data.get(*hi, *hj) {
                if actual > 0.0 {
                    errors.push(modified_relative_error(
                        actual,
                        LipschitzPca::distance(ci, cj),
                    ));
                }
            }
        }
    }
    Ok(PredictionResult {
        pairs_evaluated: errors.len(),
        hosts_joined: joined.len(),
        errors,
        build_seconds,
    })
}

/// Runs the GNP prediction experiment (Simplex Downhill embedding).
pub fn evaluate_gnp(
    data: &DistanceMatrix,
    landmarks: &[usize],
    ordinary: &[usize],
    config: GnpConfig,
) -> Result<PredictionResult> {
    let start = Instant::now();
    let lm = data.submatrix(landmarks, landmarks);
    let model =
        GnpModel::fit_landmarks(&lm, config).map_err(|e| IdesError::InvalidInput(e.to_string()))?;
    let mut d_out = Vec::with_capacity(landmarks.len());
    let mut d_in = Vec::with_capacity(landmarks.len());
    let mut joined: Vec<(usize, Vec<f64>)> = Vec::with_capacity(ordinary.len());
    for &h in ordinary {
        if landmark_rows_into(data, h, landmarks, &mut d_out, &mut d_in) {
            let coords = model
                .fit_host(&d_out, config, h as u64)
                .map_err(|e| IdesError::InvalidInput(e.to_string()))?;
            joined.push((h, coords));
        }
    }
    let build_seconds = start.elapsed().as_secs_f64();

    let mut errors = Vec::new();
    for (i, (hi, ci)) in joined.iter().enumerate() {
        for (j, (hj, cj)) in joined.iter().enumerate() {
            if i == j {
                continue;
            }
            if let Some(actual) = data.get(*hi, *hj) {
                if actual > 0.0 {
                    errors.push(modified_relative_error(actual, GnpModel::distance(ci, cj)));
                }
            }
        }
    }
    Ok(PredictionResult {
        pairs_evaluated: errors.len(),
        hosts_joined: joined.len(),
        errors,
        build_seconds,
    })
}

/// §6.2 robustness experiment: each ordinary host independently fails to
/// observe a random `unobserved_fraction` of the landmarks and joins
/// through the remainder ([`InformationServer::join_partial`]).
///
/// Returns the modified relative errors over ordinary-pair predictions.
pub fn evaluate_ides_with_failures(
    data: &DistanceMatrix,
    landmarks: &[usize],
    ordinary: &[usize],
    config: IdesConfig,
    unobserved_fraction: f64,
    seed: u64,
) -> Result<PredictionResult> {
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    if !(0.0..1.0).contains(&unobserved_fraction) {
        return Err(IdesError::InvalidInput(
            "unobserved fraction must be in [0, 1)".into(),
        ));
    }
    let start = Instant::now();
    let lm = data.submatrix(landmarks, landmarks);
    let server = InformationServer::build(&lm, config)?;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let m = landmarks.len();
    let keep = m - ((m as f64 * unobserved_fraction).round() as usize).min(m);

    let mut ws = JoinWorkspace::new();
    let mut d_out_full = Vec::with_capacity(m);
    let mut d_in_full = Vec::with_capacity(m);
    let mut idx: Vec<usize> = Vec::with_capacity(m);
    let mut d_out: Vec<f64> = Vec::with_capacity(m);
    let mut d_in: Vec<f64> = Vec::with_capacity(m);
    let mut joined: Vec<(usize, HostVectors)> = Vec::new();
    for &h in ordinary {
        if !landmark_rows_into(data, h, landmarks, &mut d_out_full, &mut d_in_full) {
            continue;
        }
        // Independent random observed subset per host.
        idx.clear();
        idx.extend(0..m);
        idx.shuffle(&mut rng);
        idx.truncate(keep.max(1));
        idx.sort_unstable();
        d_out.clear();
        d_out.extend(idx.iter().map(|&i| d_out_full[i]));
        d_in.clear();
        d_in.extend(idx.iter().map(|&i| d_in_full[i]));
        // With very few observations the plain solve is singular; the
        // evaluation mirrors the paper by still attempting the join (ridge
        // fallback keeps it defined).
        let result = server
            .join_partial_with(&mut ws, &idx, &d_out, &d_in)
            .or_else(|_| {
                let mut cfg = server.join_options();
                cfg.ridge = 1e-6;
                crate::projection::join_host_subset_with(
                    &mut ws,
                    server.model().x(),
                    server.model().y(),
                    &idx,
                    &d_out,
                    &d_in,
                    cfg,
                )
            });
        if let Ok(v) = result {
            joined.push((h, v));
        }
    }
    let build_seconds = start.elapsed().as_secs_f64();

    let mut errors = Vec::new();
    for (i, (hi, vi)) in joined.iter().enumerate() {
        for (j, (hj, vj)) in joined.iter().enumerate() {
            if i == j {
                continue;
            }
            if let Some(actual) = data.get(*hi, *hj) {
                if actual > 0.0 {
                    errors.push(modified_relative_error(actual, vi.distance_to_host(vj)));
                }
            }
        }
    }
    Ok(PredictionResult {
        pairs_evaluated: errors.len(),
        hosts_joined: joined.len(),
        errors,
        build_seconds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::split_landmarks;
    use ides_datasets::generators::{gnp_like, nlanr_like};

    #[test]
    fn ides_beats_ics_on_nlanr_like() {
        // Fig. 6(b): IDES more accurate than ICS on the NLANR-style set.
        let ds = nlanr_like(60, 21).unwrap();
        let (landmarks, ordinary) = split_landmarks(60, 20, 5);
        let ides = evaluate_ides(&ds.matrix, &landmarks, &ordinary, IdesConfig::new(8)).unwrap();
        let ics = evaluate_ics(&ds.matrix, &landmarks, &ordinary, 8).unwrap();
        let ides_med = ides.cdf().median();
        let ics_med = ics.cdf().median();
        assert!(
            ides_med < ics_med,
            "IDES median {ides_med} should beat ICS median {ics_med}"
        );
        assert_eq!(ides.hosts_joined, 40);
        assert_eq!(ides.pairs_evaluated, 40 * 39);
    }

    #[test]
    fn nmf_variant_runs_and_is_accurate() {
        let ds = nlanr_like(50, 22).unwrap();
        let (landmarks, ordinary) = split_landmarks(50, 20, 6);
        let r = evaluate_ides(&ds.matrix, &landmarks, &ordinary, IdesConfig::nmf(8)).unwrap();
        assert!(r.cdf().median() < 0.5, "NMF median {}", r.cdf().median());
    }

    #[test]
    fn failure_experiment_degrades_gracefully() {
        // Fig. 7 shape: more unobserved landmarks => error does not improve,
        // and with 0% failures it matches the basic architecture.
        let ds = nlanr_like(60, 23).unwrap();
        let (landmarks, ordinary) = split_landmarks(60, 20, 8);
        let base = evaluate_ides(&ds.matrix, &landmarks, &ordinary, IdesConfig::new(8)).unwrap();
        let f0 = evaluate_ides_with_failures(
            &ds.matrix,
            &landmarks,
            &ordinary,
            IdesConfig::new(8),
            0.0,
            1,
        )
        .unwrap();
        assert!((base.cdf().median() - f0.cdf().median()).abs() < 1e-9);
        let f6 = evaluate_ides_with_failures(
            &ds.matrix,
            &landmarks,
            &ordinary,
            IdesConfig::new(8),
            0.6,
            1,
        )
        .unwrap();
        assert!(
            f6.cdf().median() >= f0.cdf().median() * 0.8,
            "60% failures median {} vs baseline {}",
            f6.cdf().median(),
            f0.cdf().median()
        );
    }

    #[test]
    fn gnp_evaluation_runs() {
        let ds = gnp_like(19, 24).unwrap();
        let (landmarks, ordinary) = split_landmarks(19, 15, 9);
        let cfg = GnpConfig {
            landmark_evals: 20_000,
            host_evals: 2_000,
            ..GnpConfig::new(6)
        };
        let r = evaluate_gnp(&ds.matrix, &landmarks, &ordinary, cfg).unwrap();
        assert_eq!(r.hosts_joined, 4);
        assert_eq!(r.pairs_evaluated, 12);
        assert!(r.cdf().median().is_finite());
    }

    #[test]
    fn ides_is_much_faster_than_gnp() {
        // Table 1's headline: IDES builds in well under the GNP time.
        let ds = gnp_like(19, 25).unwrap();
        let (landmarks, ordinary) = split_landmarks(19, 15, 11);
        let ides = evaluate_ides(&ds.matrix, &landmarks, &ordinary, IdesConfig::new(8)).unwrap();
        let gnp = evaluate_gnp(
            &ds.matrix,
            &landmarks,
            &ordinary,
            GnpConfig {
                landmark_evals: 40_000,
                host_evals: 2_000,
                ..GnpConfig::new(8)
            },
        )
        .unwrap();
        assert!(
            ides.build_seconds * 5.0 < gnp.build_seconds,
            "IDES {}s vs GNP {}s",
            ides.build_seconds,
            gnp.build_seconds
        );
    }

    #[test]
    fn invalid_fraction_rejected() {
        let ds = gnp_like(10, 26).unwrap();
        let (landmarks, ordinary) = split_landmarks(10, 8, 12);
        assert!(evaluate_ides_with_failures(
            &ds.matrix,
            &landmarks,
            &ordinary,
            IdesConfig::new(4),
            1.0,
            0
        )
        .is_err());
    }
}
