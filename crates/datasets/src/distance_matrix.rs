//! The `DistanceMatrix` type: an (optionally rectangular, optionally
//! incomplete) matrix of measured network distances.

use serde::{Deserialize, Serialize};

use ides_linalg::Matrix;

use crate::error::{DatasetError, Result};

/// A matrix of measured network distances with a missing-entry mask.
///
/// Rows are "from" hosts and columns are "to" hosts; square matrices use
/// the same host set on both axes (footnote 3 of the paper allows the
/// rectangular case, which the AGNP data set exercises). An entry is
/// *observed* iff `mask[(i,j)] == 1.0`; unobserved entries hold `0.0` in
/// `values` and must be ignored by consumers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DistanceMatrix {
    values: Matrix,
    mask: Matrix,
    name: String,
}

impl DistanceMatrix {
    /// Wraps a fully observed matrix.
    ///
    /// Rejects negative or non-finite distances.
    pub fn full(name: impl Into<String>, values: Matrix) -> Result<Self> {
        let mask = Matrix::filled(values.rows(), values.cols(), 1.0);
        Self::with_mask(name, values, mask)
    }

    /// Wraps a matrix with an explicit observation mask.
    ///
    /// `mask` entries must be 0 or 1; observed entries must be finite and
    /// nonnegative.
    pub fn with_mask(name: impl Into<String>, values: Matrix, mask: Matrix) -> Result<Self> {
        if values.shape() != mask.shape() {
            return Err(DatasetError::ShapeMismatch {
                values: values.shape(),
                mask: mask.shape(),
            });
        }
        for (i, j, m) in mask.iter_entries() {
            if m != 0.0 && m != 1.0 {
                return Err(DatasetError::InvalidMask {
                    row: i,
                    col: j,
                    value: m,
                });
            }
            let v = values[(i, j)];
            if m == 1.0 && (!v.is_finite() || v < 0.0) {
                return Err(DatasetError::InvalidDistance {
                    row: i,
                    col: j,
                    value: v,
                });
            }
        }
        Ok(DistanceMatrix {
            values,
            mask,
            name: name.into(),
        })
    }

    /// Dataset name (used in experiment output).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of "from" hosts (rows).
    pub fn rows(&self) -> usize {
        self.values.rows()
    }

    /// Number of "to" hosts (columns).
    pub fn cols(&self) -> usize {
        self.values.cols()
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        self.values.shape()
    }

    /// True when the matrix is square.
    pub fn is_square(&self) -> bool {
        self.values.is_square()
    }

    /// The observed distance from `i` to `j`, or `None` when missing.
    pub fn get(&self, i: usize, j: usize) -> Option<f64> {
        if self.mask[(i, j)] == 1.0 {
            Some(self.values[(i, j)])
        } else {
            None
        }
    }

    /// Underlying value matrix (missing entries are 0).
    pub fn values(&self) -> &Matrix {
        &self.values
    }

    /// Observation mask (1 = observed).
    pub fn mask(&self) -> &Matrix {
        &self.mask
    }

    /// True when every entry is observed.
    pub fn is_complete(&self) -> bool {
        self.mask.as_slice().iter().all(|&m| m == 1.0)
    }

    /// Fraction of observed entries.
    pub fn observed_fraction(&self) -> f64 {
        if self.mask.is_empty() {
            return 1.0;
        }
        self.mask.sum() / (self.rows() * self.cols()) as f64
    }

    /// Count of missing entries.
    pub fn missing_count(&self) -> usize {
        self.mask.as_slice().iter().filter(|&&m| m == 0.0).count()
    }

    /// Restricts to the given row and column index sets.
    pub fn submatrix(&self, rows: &[usize], cols: &[usize]) -> DistanceMatrix {
        DistanceMatrix {
            values: self.values.select_rows(rows).select_cols(cols),
            mask: self.mask.select_rows(rows).select_cols(cols),
            name: self.name.clone(),
        }
    }

    /// Drops rows/columns containing missing entries until the matrix is
    /// complete — the paper's preprocessing ("parts of the data sets were
    /// filtered out to eliminate missing elements").
    ///
    /// Greedy: repeatedly removes the row or column with the most missing
    /// entries. Requires a square matrix (row `i` and column `i` are the
    /// same host and are removed together); returns the kept host indices
    /// alongside the filtered matrix.
    pub fn filter_complete(&self) -> Result<(DistanceMatrix, Vec<usize>)> {
        if !self.is_square() {
            return Err(DatasetError::NotSquare { got: self.shape() });
        }
        let n = self.rows();
        let mut alive: Vec<bool> = vec![true; n];
        // Incremental greedy: build each host's list of missing-pair
        // partners once, then repeatedly remove the host with the most
        // missing pairs, decrementing its partners' counts.
        let mut partners: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, j, m) in self.mask.iter_entries() {
            if m == 0.0 {
                partners[i].push(j);
                partners[j].push(i);
            }
        }
        let mut miss: Vec<usize> = partners.iter().map(|p| p.len()).collect();
        loop {
            let worst = (0..n)
                .filter(|&i| alive[i] && miss[i] > 0)
                .max_by_key(|&i| miss[i]);
            let Some(worst) = worst else { break };
            alive[worst] = false;
            for &p in &partners[worst] {
                if alive[p] {
                    miss[p] = miss[p].saturating_sub(1);
                }
            }
        }
        let kept: Vec<usize> = (0..n).filter(|&i| alive[i]).collect();
        Ok((self.submatrix(&kept, &kept), kept))
    }

    /// Iterator over observed `(i, j, distance)` triples.
    pub fn observed_entries(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.mask
            .iter_entries()
            .filter(|&(_, _, m)| m == 1.0)
            .map(|(i, j, _)| (i, j, self.values[(i, j)]))
    }

    /// Mean of observed off-diagonal distances.
    pub fn mean_distance(&self) -> f64 {
        let mut sum = 0.0;
        let mut count = 0usize;
        for (i, j, v) in self.observed_entries() {
            if i != j {
                sum += v;
                count += 1;
            }
        }
        if count == 0 {
            0.0
        } else {
            sum / count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DistanceMatrix {
        let v = Matrix::from_vec(3, 3, vec![0.0, 1.0, 2.0, 1.5, 0.0, 3.0, 2.5, 3.5, 0.0]).unwrap();
        DistanceMatrix::full("t", v).unwrap()
    }

    #[test]
    fn full_matrix_is_complete() {
        let d = sample();
        assert!(d.is_complete());
        assert_eq!(d.observed_fraction(), 1.0);
        assert_eq!(d.missing_count(), 0);
        assert_eq!(d.get(0, 1), Some(1.0));
        assert_eq!(d.get(1, 0), Some(1.5)); // asymmetric entries allowed
    }

    #[test]
    fn negative_distance_rejected() {
        let v = Matrix::from_vec(2, 2, vec![0.0, -1.0, 1.0, 0.0]).unwrap();
        assert!(DistanceMatrix::full("bad", v).is_err());
    }

    #[test]
    fn nan_rejected_only_when_observed() {
        let v = Matrix::from_vec(2, 2, vec![0.0, f64::NAN, 1.0, 0.0]).unwrap();
        assert!(DistanceMatrix::full("bad", v.clone()).is_err());
        let mut mask = Matrix::filled(2, 2, 1.0);
        mask[(0, 1)] = 0.0;
        // NaN behind the mask... still invalid because values must be 0 when
        // masked? We allow it: the entry is unobserved, so only mask matters.
        let mut v2 = v;
        v2[(0, 1)] = 0.0;
        let d = DistanceMatrix::with_mask("ok", v2, mask).unwrap();
        assert_eq!(d.get(0, 1), None);
        assert_eq!(d.missing_count(), 1);
    }

    #[test]
    fn invalid_mask_value_rejected() {
        let v = Matrix::zeros(2, 2);
        let mut mask = Matrix::filled(2, 2, 1.0);
        mask[(1, 1)] = 0.5;
        assert!(DistanceMatrix::with_mask("bad", v, mask).is_err());
    }

    #[test]
    fn shape_mismatch_rejected() {
        let v = Matrix::zeros(2, 2);
        let mask = Matrix::filled(2, 3, 1.0);
        assert!(DistanceMatrix::with_mask("bad", v, mask).is_err());
    }

    #[test]
    fn submatrix_preserves_values() {
        let d = sample();
        let s = d.submatrix(&[0, 2], &[0, 2]);
        assert_eq!(s.shape(), (2, 2));
        assert_eq!(s.get(0, 1), Some(2.0));
        assert_eq!(s.get(1, 0), Some(2.5));
    }

    #[test]
    fn filter_complete_removes_offending_host() {
        // Host 2 has two missing measurements; filtering must remove it.
        let v = Matrix::from_vec(3, 3, vec![0.0, 1.0, 0.0, 1.0, 0.0, 5.0, 0.0, 5.0, 0.0]).unwrap();
        let mut mask = Matrix::filled(3, 3, 1.0);
        mask[(0, 2)] = 0.0;
        mask[(2, 0)] = 0.0;
        let d = DistanceMatrix::with_mask("m", v, mask).unwrap();
        let (filtered, kept) = d.filter_complete().unwrap();
        assert_eq!(kept, vec![0, 1]);
        assert!(filtered.is_complete());
        assert_eq!(filtered.shape(), (2, 2));
    }

    #[test]
    fn filter_complete_noop_when_complete() {
        let d = sample();
        let (filtered, kept) = d.filter_complete().unwrap();
        assert_eq!(kept.len(), 3);
        assert_eq!(filtered.shape(), (3, 3));
    }

    #[test]
    fn filter_rejects_rectangular() {
        let d = DistanceMatrix::full("r", Matrix::zeros(2, 3)).unwrap();
        assert!(d.filter_complete().is_err());
    }

    #[test]
    fn observed_entries_iteration() {
        let v = Matrix::from_vec(2, 2, vec![0.0, 7.0, 0.0, 0.0]).unwrap();
        let mut mask = Matrix::filled(2, 2, 1.0);
        mask[(1, 0)] = 0.0;
        let d = DistanceMatrix::with_mask("m", v, mask).unwrap();
        let entries: Vec<_> = d.observed_entries().collect();
        assert_eq!(entries.len(), 3);
        assert!(entries.contains(&(0, 1, 7.0)));
        assert!(!entries.iter().any(|&(i, j, _)| i == 1 && j == 0));
    }

    #[test]
    fn mean_distance_ignores_diagonal_and_missing() {
        let d = sample();
        let expected = (1.0 + 2.0 + 1.5 + 3.0 + 2.5 + 3.5) / 6.0;
        assert!((d.mean_distance() - expected).abs() < 1e-12);
    }

    #[test]
    fn serde_roundtrip() {
        let d = sample();
        let json = serde_json::to_string(&d).unwrap();
        let back: DistanceMatrix = serde_json::from_str(&json).unwrap();
        assert_eq!(back.shape(), d.shape());
        assert_eq!(back.get(2, 1), d.get(2, 1));
        assert_eq!(back.name(), "t");
    }
}
