//! Structural statistics of distance matrices.
//!
//! These quantify the phenomena the paper's argument rests on: triangle-
//! inequality violations from sub-optimal routing (§2.2 cites ~40 % of
//! pairs having a shorter one-hop detour), route asymmetry, and the
//! near-low-rank structure that makes factorization work.

use ides_linalg::svd::{svd_truncated, TruncatedSvdOptions};
use ides_linalg::Matrix;

use crate::distance_matrix::DistanceMatrix;

/// Fraction of ordered host pairs `(i, j)` for which some relay `k` gives
/// `D[i][k] + D[k][j] < D[i][j]` by more than `rel_slack` (relative).
///
/// Missing entries never participate. Quadratic-in-pairs × hosts; sampled
/// down to `max_pairs` pairs for large matrices (deterministic stride).
pub fn triangle_violation_fraction(d: &DistanceMatrix, rel_slack: f64, max_pairs: usize) -> f64 {
    assert!(d.is_square(), "TIV is defined on square matrices");
    let n = d.rows();
    if n < 3 {
        return 0.0;
    }
    let total_pairs = n * (n - 1);
    let stride = (total_pairs / max_pairs.max(1)).max(1);
    let mut violated = 0usize;
    let mut examined = 0usize;
    let mut counter = 0usize;
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            counter += 1;
            if !counter.is_multiple_of(stride) {
                continue;
            }
            let Some(dij) = d.get(i, j) else { continue };
            if dij <= 0.0 {
                continue;
            }
            examined += 1;
            let has_detour = (0..n).any(|k| {
                if k == i || k == j {
                    return false;
                }
                match (d.get(i, k), d.get(k, j)) {
                    (Some(a), Some(b)) => a + b < dij * (1.0 - rel_slack),
                    _ => false,
                }
            });
            if has_detour {
                violated += 1;
            }
        }
    }
    if examined == 0 {
        0.0
    } else {
        violated as f64 / examined as f64
    }
}

/// Mean relative asymmetry over observed off-diagonal pairs:
/// `|D_ij − D_ji| / max(D_ij, D_ji)`.
pub fn asymmetry_index(d: &DistanceMatrix) -> f64 {
    assert!(d.is_square(), "asymmetry is defined on square matrices");
    let n = d.rows();
    let mut sum = 0.0;
    let mut count = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            if let (Some(a), Some(b)) = (d.get(i, j), d.get(j, i)) {
                let m = a.max(b);
                if m > 0.0 {
                    sum += (a - b).abs() / m;
                    count += 1;
                }
            }
        }
    }
    if count == 0 {
        0.0
    } else {
        sum / count as f64
    }
}

/// Effective rank: smallest `d` such that the top-`d` singular values carry
/// `energy_fraction` of the total squared spectral energy (computed over
/// the first `probe_rank` singular values; returns `probe_rank` when even
/// those do not reach the threshold).
///
/// The probe runs through `ides_linalg`'s unified factorization entry
/// points: subspace iteration re-orthonormalized by the blocked QR, with
/// the near-full-rank fallback dispatching to the blocked Golub–Kahan SVD
/// (Jacobi below the small-matrix cutoff).
pub fn effective_rank(values: &Matrix, energy_fraction: f64, probe_rank: usize) -> usize {
    let k = probe_rank.min(values.rows()).min(values.cols());
    if k == 0 {
        return 0;
    }
    let svd =
        svd_truncated(values, k, TruncatedSvdOptions::default()).expect("svd of finite matrix");
    let total = values.frobenius_norm().powi(2);
    if total == 0.0 {
        return 0;
    }
    let mut acc = 0.0;
    for (i, s) in svd.singular_values.iter().enumerate() {
        acc += s * s;
        if acc >= energy_fraction * total {
            return i + 1;
        }
    }
    k
}

/// Simple summary of a dataset, printable in experiment headers.
#[derive(Debug, Clone)]
pub struct DatasetSummary {
    /// Dataset name.
    pub name: String,
    /// Shape of the matrix.
    pub shape: (usize, usize),
    /// Mean observed off-diagonal distance (ms).
    pub mean_rtt_ms: f64,
    /// Fraction of observed entries.
    pub observed_fraction: f64,
    /// Triangle-violation fraction (square matrices; else 0).
    pub tiv_fraction: f64,
    /// Mean relative asymmetry (square matrices; else 0).
    pub asymmetry: f64,
    /// Effective rank at 95 % energy.
    pub effective_rank_95: usize,
}

/// Computes the summary statistics for a dataset.
pub fn summarize(d: &DistanceMatrix) -> DatasetSummary {
    let (tiv, asym) = if d.is_square() {
        (
            triangle_violation_fraction(d, 0.005, 20_000),
            asymmetry_index(d),
        )
    } else {
        (0.0, 0.0)
    };
    DatasetSummary {
        name: d.name().to_string(),
        shape: d.shape(),
        mean_rtt_ms: d.mean_distance(),
        observed_fraction: d.observed_fraction(),
        tiv_fraction: tiv,
        asymmetry: asym,
        effective_rank_95: effective_rank(d.values(), 0.95, 40),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dm(values: Vec<f64>, n: usize) -> DistanceMatrix {
        DistanceMatrix::full("t", Matrix::from_vec(n, n, values).unwrap()).unwrap()
    }

    #[test]
    fn metric_matrix_has_no_violations() {
        // Shortest-path metric (Figure 1 ring) satisfies the triangle
        // inequality exactly.
        let d = dm(
            vec![
                0.0, 1.0, 1.0, 2.0, 1.0, 0.0, 2.0, 1.0, 1.0, 2.0, 0.0, 1.0, 2.0, 1.0, 1.0, 0.0,
            ],
            4,
        );
        assert_eq!(triangle_violation_fraction(&d, 0.001, 10_000), 0.0);
    }

    #[test]
    fn detects_planted_violation() {
        // D[0][2] = 10 but D[0][1] + D[1][2] = 2: pair (0,2) violates.
        let d = dm(vec![0.0, 1.0, 10.0, 1.0, 0.0, 1.0, 10.0, 1.0, 0.0], 3);
        let f = triangle_violation_fraction(&d, 0.001, 10_000);
        // Ordered pairs: (0,2) and (2,0) violate out of 6.
        assert!((f - 2.0 / 6.0).abs() < 1e-12, "fraction {f}");
    }

    #[test]
    fn symmetric_matrix_has_zero_asymmetry() {
        let d = dm(vec![0.0, 5.0, 5.0, 0.0], 2);
        assert_eq!(asymmetry_index(&d), 0.0);
    }

    #[test]
    fn asymmetry_measured() {
        // D_01 = 10, D_10 = 5 -> |10-5|/10 = 0.5.
        let d = dm(vec![0.0, 10.0, 5.0, 0.0], 2);
        assert!((asymmetry_index(&d) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn effective_rank_of_low_rank_matrix() {
        // Rank-2 matrix: effective rank at 99.9% energy must be <= 2.
        let b = Matrix::from_fn(20, 2, |i, j| ((i + j) as f64 * 0.4).sin() + 1.5);
        let c = Matrix::from_fn(2, 20, |i, j| ((i * 3 + j) as f64 * 0.2).cos() + 1.0);
        let m = b.matmul(&c).unwrap();
        let r = effective_rank(&m, 0.999, 10);
        assert!(r <= 2, "effective rank {r}");
    }

    #[test]
    fn effective_rank_identity() {
        // Identity spreads energy evenly: need ~95% of dimensions.
        let m = Matrix::identity(20);
        let r = effective_rank(&m, 0.95, 20);
        assert!(r >= 19, "effective rank {r}");
    }

    #[test]
    fn summary_runs_on_masked_data() {
        let v = Matrix::from_vec(3, 3, vec![0.0, 1.0, 0.0, 1.0, 0.0, 2.0, 0.0, 2.0, 0.0]).unwrap();
        let mut mask = Matrix::filled(3, 3, 1.0);
        mask[(0, 2)] = 0.0;
        mask[(2, 0)] = 0.0;
        let d = DistanceMatrix::with_mask("m", v, mask).unwrap();
        let s = summarize(&d);
        assert_eq!(s.shape, (3, 3));
        assert!(s.observed_fraction < 1.0);
        assert!(s.mean_rtt_ms > 0.0);
    }

    #[test]
    fn sampling_cap_is_respected_and_stable() {
        let n = 30;
        let vals = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                0.0
            } else {
                10.0 + ((i * 31 + j * 17) % 7) as f64
            }
        });
        let d = DistanceMatrix::full("s", vals).unwrap();
        let f1 = triangle_violation_fraction(&d, 0.001, 100);
        let f2 = triangle_violation_fraction(&d, 0.001, 100);
        assert_eq!(f1, f2, "sampled TIV must be deterministic");
        assert!((0.0..=1.0).contains(&f1));
    }
}
