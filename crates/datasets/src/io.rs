//! Reading and writing distance matrices.
//!
//! Two formats:
//! * **JSON** via serde — lossless, includes the mask and name.
//! * **Plain text** — one row per line, whitespace-separated, `?` for a
//!   missing entry; the format used by common RTT matrix dumps.

use std::fs;
use std::io::Write as _;
use std::path::Path;

use ides_linalg::Matrix;

use crate::distance_matrix::DistanceMatrix;
use crate::error::{DatasetError, Result};

/// Writes the matrix to a JSON file.
pub fn save_json(d: &DistanceMatrix, path: &Path) -> Result<()> {
    let json = serde_json::to_string(d)?;
    let mut f = fs::File::create(path)?;
    f.write_all(json.as_bytes())?;
    Ok(())
}

/// Reads a matrix from a JSON file produced by [`save_json`].
pub fn load_json(path: &Path) -> Result<DistanceMatrix> {
    let data = fs::read_to_string(path)?;
    Ok(serde_json::from_str(&data)?)
}

/// Serializes to the plain-text row format.
pub fn to_text(d: &DistanceMatrix) -> String {
    let mut out = String::new();
    for i in 0..d.rows() {
        for j in 0..d.cols() {
            if j > 0 {
                out.push(' ');
            }
            match d.get(i, j) {
                Some(v) => out.push_str(&format!("{v}")),
                None => out.push('?'),
            }
        }
        out.push('\n');
    }
    out
}

/// Parses the plain-text row format. All rows must have the same number of
/// fields; `?` (or `nan`) marks a missing entry.
pub fn from_text(name: &str, text: &str) -> Result<DistanceMatrix> {
    let mut rows: Vec<Vec<Option<f64>>> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut row = Vec::new();
        for field in line.split_whitespace() {
            if field == "?" || field.eq_ignore_ascii_case("nan") {
                row.push(None);
            } else {
                let v: f64 = field.parse().map_err(|_| DatasetError::Parse {
                    line: lineno + 1,
                    message: format!("not a number: {field:?}"),
                })?;
                row.push(Some(v));
            }
        }
        if let Some(first) = rows.first() {
            if row.len() != first.len() {
                return Err(DatasetError::Parse {
                    line: lineno + 1,
                    message: format!("expected {} fields, found {}", first.len(), row.len()),
                });
            }
        }
        rows.push(row);
    }
    if rows.is_empty() {
        return Err(DatasetError::Parse {
            line: 0,
            message: "empty matrix".into(),
        });
    }
    let (r, c) = (rows.len(), rows[0].len());
    let mut values = Matrix::zeros(r, c);
    let mut mask = Matrix::zeros(r, c);
    for (i, row) in rows.iter().enumerate() {
        for (j, cell) in row.iter().enumerate() {
            if let Some(v) = cell {
                values[(i, j)] = *v;
                mask[(i, j)] = 1.0;
            }
        }
    }
    DistanceMatrix::with_mask(name, values, mask)
}

/// Writes the plain-text format to a file.
pub fn save_text(d: &DistanceMatrix, path: &Path) -> Result<()> {
    let mut f = fs::File::create(path)?;
    f.write_all(to_text(d).as_bytes())?;
    Ok(())
}

/// Reads the plain-text format from a file.
pub fn load_text(name: &str, path: &Path) -> Result<DistanceMatrix> {
    let text = fs::read_to_string(path)?;
    from_text(name, &text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DistanceMatrix {
        let v = Matrix::from_vec(2, 3, vec![0.0, 1.5, 2.0, 3.0, 0.0, 4.5]).unwrap();
        let mut mask = Matrix::filled(2, 3, 1.0);
        mask[(0, 2)] = 0.0;
        let mut v = v;
        v[(0, 2)] = 0.0;
        DistanceMatrix::with_mask("sample", v, mask).unwrap()
    }

    #[test]
    fn text_roundtrip() {
        let d = sample();
        let text = to_text(&d);
        assert!(text.contains('?'));
        let back = from_text("sample", &text).unwrap();
        assert_eq!(back.shape(), d.shape());
        for i in 0..2 {
            for j in 0..3 {
                assert_eq!(back.get(i, j), d.get(i, j));
            }
        }
    }

    #[test]
    fn text_parses_comments_and_blanks() {
        let text = "# header\n\n0 1\n1 0\n";
        let d = from_text("x", text).unwrap();
        assert_eq!(d.shape(), (2, 2));
        assert_eq!(d.get(0, 1), Some(1.0));
    }

    #[test]
    fn text_rejects_ragged() {
        assert!(from_text("x", "0 1\n2\n").is_err());
    }

    #[test]
    fn text_rejects_garbage() {
        assert!(from_text("x", "0 abc\n").is_err());
        assert!(from_text("x", "").is_err());
    }

    #[test]
    fn json_file_roundtrip() {
        let dir = std::env::temp_dir().join("ides_io_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.json");
        let d = sample();
        save_json(&d, &path).unwrap();
        let back = load_json(&path).unwrap();
        assert_eq!(back.shape(), d.shape());
        assert_eq!(back.get(1, 2), d.get(1, 2));
        assert_eq!(back.name(), "sample");
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn text_file_roundtrip() {
        let dir = std::env::temp_dir().join("ides_io_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.txt");
        let d = sample();
        save_text(&d, &path).unwrap();
        let back = load_text("sample", &path).unwrap();
        assert_eq!(back.shape(), d.shape());
        assert_eq!(back.get(0, 2), None);
        fs::remove_file(&path).unwrap();
    }
}
