//! Generators for the five paper-like data sets.
//!
//! The paper evaluates on NLANR, GNP, AGNP, P2PSim (King) and PL-RTT —
//! real measurement collections we cannot redistribute. Each generator
//! below builds a synthetic topology whose *structure* matches what the
//! paper reports about the corresponding data set (size, geography,
//! measurement style), then runs the simulated measurement pipeline.
//! DESIGN.md §2 documents each substitution.

use rand::rngs::StdRng;
use rand::SeedableRng;

use ides_linalg::Matrix;
use ides_netsim::measurement::{measure_rtt, MeasurementParams};
use ides_netsim::topology::{TransitStubParams, TransitStubTopology};

use crate::distance_matrix::DistanceMatrix;
use crate::error::Result;

/// A generated data set together with its topology (kept so experiments
/// can measure *new* paths on demand, e.g. for host-join probes).
pub struct GeneratedDataset {
    /// The measured distance matrix.
    pub matrix: DistanceMatrix,
    /// The topology it was measured on.
    pub topology: TransitStubTopology,
    /// Host indices (into `topology.hosts`) for each matrix row.
    pub row_hosts: Vec<usize>,
    /// Host indices for each matrix column (== `row_hosts` when square).
    pub col_hosts: Vec<usize>,
}

impl GeneratedDataset {
    /// Ground-truth (noise-free) RTT between matrix row `i` and column `j`.
    pub fn true_rtt(&self, i: usize, j: usize) -> f64 {
        self.topology.host_rtt(self.row_hosts[i], self.col_hosts[j])
    }
}

/// Measurement style: symmetric data sets measure each unordered pair once
/// and mirror it (RTT is a round trip); King-style data sets measure each
/// ordered pair at a different time, so the matrix picks up measurement
/// asymmetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PairStyle {
    SymmetricOnce,
    OrderedIndependent,
}

fn measure_square(
    topo: &TransitStubTopology,
    params: &MeasurementParams,
    style: PairStyle,
    name: &str,
    rng: &mut StdRng,
) -> Result<DistanceMatrix> {
    measure_square_with_loss(topo, params, style, name, &|_, _| params.loss_prob, rng)
}

/// Like [`measure_square`] but with a per-pair loss probability.
///
/// Real measurement loss is host-clustered, not i.i.d. per pair: a DNS
/// server that rejects King queries loses *all* its pairs. Passing a
/// host-propensity-based function here makes the post-filter survivor
/// fraction realistic (the paper kept 1143 of ~2000 hosts).
fn measure_square_with_loss(
    topo: &TransitStubTopology,
    params: &MeasurementParams,
    style: PairStyle,
    name: &str,
    pair_loss: &dyn Fn(usize, usize) -> f64,
    rng: &mut StdRng,
) -> Result<DistanceMatrix> {
    use rand::Rng;
    let clean = MeasurementParams {
        loss_prob: 0.0,
        ..params.clone()
    };
    let n = topo.host_count();
    let mut values = Matrix::zeros(n, n);
    let mut mask = Matrix::zeros(n, n);
    let lost = |i: usize, j: usize, rng: &mut StdRng| -> bool {
        let p = pair_loss(i, j).clamp(0.0, 1.0);
        p > 0.0 && rng.gen_bool(p)
    };
    for i in 0..n {
        mask[(i, i)] = 1.0;
        for j in (i + 1)..n {
            let base = topo.host_rtt(i, j);
            match style {
                PairStyle::SymmetricOnce => {
                    if !lost(i, j, rng) {
                        if let Some(v) = measure_rtt(base, &clean, rng) {
                            values[(i, j)] = v;
                            values[(j, i)] = v;
                            mask[(i, j)] = 1.0;
                            mask[(j, i)] = 1.0;
                        }
                    }
                }
                PairStyle::OrderedIndependent => {
                    if !lost(i, j, rng) {
                        if let Some(v) = measure_rtt(base, &clean, rng) {
                            values[(i, j)] = v;
                            mask[(i, j)] = 1.0;
                        }
                    }
                    if !lost(j, i, rng) {
                        if let Some(v) = measure_rtt(base, &clean, rng) {
                            values[(j, i)] = v;
                            mask[(j, i)] = 1.0;
                        }
                    }
                }
            }
        }
    }
    DistanceMatrix::with_mask(name, values, mask)
}

/// NLANR-like: `n` hosts (paper: 110), ~90 % in North America on research
/// networks (symmetric low-delay access), min-RTT-over-a-day probing.
///
/// This is the paper's "easy" data set: geographically uniform, clean
/// measurements, hence well modeled in low dimension.
pub fn nlanr_like(n: usize, seed: u64) -> Result<GeneratedDataset> {
    let mut rng = StdRng::seed_from_u64(seed);
    let params = TransitStubParams {
        hosts: n,
        region_weights: [0.9, 0.05, 0.05, 0.0, 0.0],
        // A dense research backbone: stubs sit close to a transit router,
        // so policy detours exist (TIVs) but save modest amounts, keeping
        // the matrix near-low-rank — the property the paper attributes to
        // NLANR's uniform geography.
        transits_per_region: 6,
        stubs: (n / 5).clamp(4, 40),
        multihoming_prob: 0.3,
        peering_prob: 0.3,
        access_delay_ms: 0.8, // HPC sites: fast, symmetric access
        access_asymmetry: 0.1,
        path_diversity: 0.03,
    };
    let topo = TransitStubTopology::generate(&params, &mut rng);
    let matrix = measure_square(
        &topo,
        &MeasurementParams::nlanr_style(),
        PairStyle::SymmetricOnce,
        "nlanr",
        &mut rng,
    )?;
    let hosts: Vec<usize> = (0..n).collect();
    Ok(GeneratedDataset {
        matrix,
        topology: topo,
        row_hosts: hosts.clone(),
        col_hosts: hosts,
    })
}

/// GNP-like: `n` hosts (paper: 19), about half in North America and the
/// rest global; minimum RTT probing; symmetric.
pub fn gnp_like(n: usize, seed: u64) -> Result<GeneratedDataset> {
    let mut rng = StdRng::seed_from_u64(seed);
    let params = TransitStubParams {
        hosts: n,
        region_weights: [0.5, 0.2, 0.15, 0.1, 0.05],
        transits_per_region: 2,
        stubs: n.clamp(4, 19), // roughly one site per stub
        multihoming_prob: 0.3,
        peering_prob: 0.25,
        access_delay_ms: 1.5,
        access_asymmetry: 0.3,
        path_diversity: 0.08,
    };
    let topo = TransitStubTopology::generate(&params, &mut rng);
    let matrix = measure_square(
        &topo,
        &MeasurementParams::nlanr_style(),
        PairStyle::SymmetricOnce,
        "gnp",
        &mut rng,
    )?;
    let hosts: Vec<usize> = (0..n).collect();
    Ok(GeneratedDataset {
        matrix,
        topology: topo,
        row_hosts: hosts.clone(),
        col_hosts: hosts,
    })
}

/// AGNP-like: rectangular `rows x cols` matrix (paper: 869×19) of RTTs from
/// a large probe population to the GNP landmark set; each ordered pair is
/// measured independently, so the data carries measurement and routing
/// asymmetry. `cols` hosts are the first `cols` of the population.
pub fn agnp_like(rows: usize, cols: usize, seed: u64) -> Result<GeneratedDataset> {
    let mut rng = StdRng::seed_from_u64(seed);
    let total = rows + cols;
    let params = TransitStubParams {
        hosts: total,
        region_weights: [0.45, 0.25, 0.15, 0.1, 0.05],
        transits_per_region: 3,
        stubs: (total / 12).clamp(8, 80),
        multihoming_prob: 0.4,
        peering_prob: 0.3,
        access_delay_ms: 4.0, // broadband-ish probe hosts
        access_asymmetry: 1.5,
        path_diversity: 0.10,
    };
    let topo = TransitStubTopology::generate(&params, &mut rng);
    let col_hosts: Vec<usize> = (0..cols).collect();
    let row_hosts: Vec<usize> = (cols..total).take(rows).collect();
    let mparams = MeasurementParams {
        probes: 6,
        jitter_frac: 0.15,
        floor_jitter_ms: 0.3,
        loss_prob: 0.0,
    };
    let mut values = Matrix::zeros(rows, cols);
    let mut mask = Matrix::zeros(rows, cols);
    for (ri, &hi) in row_hosts.iter().enumerate() {
        for (cj, &hj) in col_hosts.iter().enumerate() {
            // One-way-dominant measurement: forward path + a fixed return
            // over the landmark's (clean) access, so rows see asymmetry.
            let base = topo.host_delay(hi, hj) + topo.host_delay(hj, hi);
            if let Some(v) = measure_rtt(base, &mparams, &mut rng) {
                values[(ri, cj)] = v;
                mask[(ri, cj)] = 1.0;
            }
        }
    }
    let matrix = DistanceMatrix::with_mask("agnp", values, mask)?;
    Ok(GeneratedDataset {
        matrix,
        topology: topo,
        row_hosts,
        col_hosts,
    })
}

/// P2PSim-like: `n` hosts (paper: 1143 DNS servers after filtering),
/// heavy-tailed global spread, King-style indirect measurement (few probes,
/// heavy jitter, per-ordered-pair sampling). The paper's "hard" data set.
pub fn p2psim_like(n: usize, seed: u64) -> Result<GeneratedDataset> {
    let mut rng = StdRng::seed_from_u64(seed);
    // `n` is the *post-filter* target (the paper's 1143 is what survived
    // filtering ~2000 King-probed servers); oversample accordingly.
    let raw = (n as f64 / 0.55).ceil() as usize;
    let params = TransitStubParams {
        hosts: raw,
        region_weights: [0.4, 0.25, 0.2, 0.1, 0.05],
        transits_per_region: 4,
        stubs: (raw / 8).clamp(8, 160),
        multihoming_prob: 0.5,
        peering_prob: 0.25,
        access_delay_ms: 5.0, // DNS servers behind varied access links
        access_asymmetry: 2.0,
        path_diversity: 0.15,
    };
    let topo = TransitStubTopology::generate(&params, &mut rng);
    // Host-clustered measurement loss: ~25 % of DNS servers answer King
    // probes unreliably and lose a fifth of their pairs; reliable hosts
    // lose almost nothing. Filtering then mostly removes the unreliable
    // hosts, keeping a survivor fraction near the paper's (1143 of ~2000).
    let reliability: Vec<f64> = {
        use rand::Rng;
        (0..raw)
            .map(|_| if rng.gen_bool(0.35) { 0.25 } else { 0.0001 })
            .collect()
    };
    let pair_loss =
        |i: usize, j: usize| -> f64 { 1.0 - (1.0 - reliability[i]) * (1.0 - reliability[j]) };
    let matrix = measure_square_with_loss(
        &topo,
        &MeasurementParams::king_style(),
        PairStyle::OrderedIndependent,
        "p2psim",
        &pair_loss,
        &mut rng,
    )?;
    // The paper filtered missing King measurements down to a full matrix.
    let (filtered, kept) = matrix.filter_complete()?;
    // Trim to the requested post-filter size when oversampling left more.
    let (matrix, kept) = if kept.len() > n {
        let keep_idx: Vec<usize> = (0..n).collect();
        (filtered.submatrix(&keep_idx, &keep_idx), kept[..n].to_vec())
    } else {
        (filtered, kept)
    };
    Ok(GeneratedDataset {
        matrix,
        topology: topo,
        row_hosts: kept.clone(),
        col_hosts: kept,
    })
}

/// PL-RTT-like: `n` hosts (paper: 169 PlanetLab nodes), global research
/// network with GREN-style routing detours (aggressive peering policies),
/// min-RTT filtered.
pub fn plrtt_like(n: usize, seed: u64) -> Result<GeneratedDataset> {
    let mut rng = StdRng::seed_from_u64(seed);
    let params = TransitStubParams {
        hosts: n,
        region_weights: [0.45, 0.3, 0.15, 0.05, 0.05],
        transits_per_region: 3,
        stubs: (n / 4).clamp(6, 60),
        multihoming_prob: 0.6, // PlanetLab sites are richly connected
        peering_prob: 0.5,     // GREN: many research-network shortcuts
        access_delay_ms: 1.0,
        access_asymmetry: 0.2,
        path_diversity: 0.08,
    };
    let topo = TransitStubTopology::generate(&params, &mut rng);
    let matrix = measure_square(
        &topo,
        &MeasurementParams::nlanr_style(),
        PairStyle::SymmetricOnce,
        "pl-rtt",
        &mut rng,
    )?;
    let hosts: Vec<usize> = (0..n).collect();
    Ok(GeneratedDataset {
        matrix,
        topology: topo,
        row_hosts: hosts.clone(),
        col_hosts: hosts,
    })
}

/// Paper-scale sizes for all five data sets.
pub mod paper_sizes {
    /// NLANR clique size (110×110).
    pub const NLANR: usize = 110;
    /// GNP symmetric set (19×19).
    pub const GNP: usize = 19;
    /// AGNP probe rows (869).
    pub const AGNP_ROWS: usize = 869;
    /// AGNP landmark columns (19).
    pub const AGNP_COLS: usize = 19;
    /// P2PSim host count after filtering (1143).
    pub const P2PSIM: usize = 1143;
    /// PL-RTT full matrix size (169×169).
    pub const PLRTT: usize = 169;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    #[test]
    fn nlanr_is_symmetric_and_complete() {
        let ds = nlanr_like(40, 1).unwrap();
        let d = &ds.matrix;
        assert!(d.is_complete());
        for i in 0..d.rows() {
            for j in 0..d.cols() {
                assert_eq!(d.get(i, j), d.get(j, i));
            }
        }
        assert_eq!(d.name(), "nlanr");
    }

    #[test]
    fn nlanr_mostly_north_america() {
        let ds = nlanr_like(60, 2).unwrap();
        let na = ds
            .topology
            .hosts
            .iter()
            .filter(|h| ds.topology.stubs[h.stub].region == 0)
            .count();
        assert!(
            na * 10 >= ds.topology.host_count() * 7,
            "{na} NA hosts of {}",
            ds.topology.host_count()
        );
    }

    #[test]
    fn p2psim_ordered_measurement_is_asymmetric() {
        let ds = p2psim_like(60, 3).unwrap();
        assert!(
            ds.matrix.is_complete(),
            "filtering must produce a full matrix"
        );
        let asym = stats::asymmetry_index(&ds.matrix);
        assert!(
            asym > 0.01,
            "King-style data should be measurably asymmetric, got {asym}"
        );
    }

    #[test]
    fn p2psim_filtering_tracks_kept_hosts() {
        let ds = p2psim_like(50, 4).unwrap();
        assert_eq!(ds.matrix.rows(), ds.row_hosts.len());
        // true_rtt must be callable for any surviving cell.
        let r = ds.true_rtt(0, 1);
        assert!(r > 0.0 && r.is_finite());
    }

    #[test]
    fn agnp_is_rectangular() {
        let ds = agnp_like(50, 10, 5).unwrap();
        assert_eq!(ds.matrix.shape(), (50, 10));
        assert!(!ds.matrix.is_square());
        assert_eq!(ds.row_hosts.len(), 50);
        assert_eq!(ds.col_hosts.len(), 10);
        // Rows and columns are disjoint host sets.
        assert!(ds.row_hosts.iter().all(|h| !ds.col_hosts.contains(h)));
    }

    #[test]
    fn datasets_have_triangle_violations() {
        // The substrate must reproduce sub-optimal routing on every square set.
        for (name, ds) in [
            ("nlanr", nlanr_like(50, 6).unwrap()),
            ("plrtt", plrtt_like(50, 7).unwrap()),
        ] {
            let f = stats::triangle_violation_fraction(&ds.matrix, 0.005, 20_000);
            assert!(f > 0.03, "{name} TIV fraction {f} too small");
        }
    }

    #[test]
    fn datasets_are_near_low_rank() {
        // The core premise: effective rank well below matrix size.
        let ds = nlanr_like(60, 8).unwrap();
        let r = stats::effective_rank(ds.matrix.values(), 0.95, 30);
        assert!(r < 25, "effective rank {r} of a 60x60 NLANR-like matrix");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = gnp_like(19, 9).unwrap();
        let b = gnp_like(19, 9).unwrap();
        assert_eq!(a.matrix.values().as_slice(), b.matrix.values().as_slice());
        let c = gnp_like(19, 10).unwrap();
        assert_ne!(a.matrix.values().as_slice(), c.matrix.values().as_slice());
    }

    #[test]
    fn gnp_paper_size() {
        let ds = gnp_like(paper_sizes::GNP, 11).unwrap();
        assert_eq!(ds.matrix.shape(), (19, 19));
    }
}
