//! # ides-datasets
//!
//! Distance-matrix data sets for the IDES reproduction: the
//! [`DistanceMatrix`] container (rectangular and missing-entry aware, per
//! footnote 3 and §4.2 of the paper), synthetic stand-ins for the paper's
//! five measurement data sets, structural statistics (triangle-inequality
//! violations, asymmetry, effective rank), and text/JSON IO.
//!
//! ```
//! use ides_datasets::generators::gnp_like;
//! use ides_datasets::stats;
//!
//! let ds = gnp_like(19, 7).unwrap();
//! assert_eq!(ds.matrix.shape(), (19, 19));
//! let summary = stats::summarize(&ds.matrix);
//! assert!(summary.mean_rtt_ms > 0.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod distance_matrix;
pub mod error;
pub mod generators;
pub mod io;
pub mod stats;

pub use distance_matrix::DistanceMatrix;
pub use error::{DatasetError, Result};
pub use generators::GeneratedDataset;
