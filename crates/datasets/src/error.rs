//! Error type for dataset construction and IO.
//!
//! Implemented by hand (no `thiserror`): the build environment is offline,
//! so derive-based error crates are unavailable; see `vendor/README.md`.

use std::fmt;

/// Result alias using [`DatasetError`].
pub type Result<T> = std::result::Result<T, DatasetError>;

/// Errors from dataset construction, filtering, and IO.
#[derive(Debug)]
pub enum DatasetError {
    /// Value and mask matrices differ in shape.
    ShapeMismatch {
        /// Shape of the values matrix.
        values: (usize, usize),
        /// Shape of the mask matrix.
        mask: (usize, usize),
    },
    /// Mask entries must be exactly 0 or 1.
    InvalidMask {
        /// Row index of the offending entry.
        row: usize,
        /// Column index of the offending entry.
        col: usize,
        /// The invalid mask value.
        value: f64,
    },
    /// Observed distances must be finite and nonnegative.
    InvalidDistance {
        /// Row index of the offending entry.
        row: usize,
        /// Column index of the offending entry.
        col: usize,
        /// The invalid distance.
        value: f64,
    },
    /// Operation requires a square matrix.
    NotSquare {
        /// Shape actually supplied.
        got: (usize, usize),
    },
    /// Underlying IO failure.
    Io(std::io::Error),
    /// JSON (de)serialization failure.
    Json(serde_json::Error),
    /// Malformed text-format matrix file.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::ShapeMismatch { values, mask } => write!(
                f,
                "values matrix is {}x{} but mask is {}x{}",
                values.0, values.1, mask.0, mask.1
            ),
            DatasetError::InvalidMask { row, col, value } => {
                write!(f, "mask entry at ({row},{col}) is {value}, expected 0 or 1")
            }
            DatasetError::InvalidDistance { row, col, value } => write!(
                f,
                "distance at ({row},{col}) is {value}, expected finite and >= 0"
            ),
            DatasetError::NotSquare { got } => {
                write!(
                    f,
                    "operation requires a square matrix, got {}x{}",
                    got.0, got.1
                )
            }
            DatasetError::Io(e) => write!(f, "io error: {e}"),
            DatasetError::Json(e) => write!(f, "serialization error: {e}"),
            DatasetError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for DatasetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DatasetError::Io(e) => Some(e),
            DatasetError::Json(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DatasetError {
    fn from(e: std::io::Error) -> Self {
        DatasetError::Io(e)
    }
}

impl From<serde_json::Error> for DatasetError {
    fn from(e: serde_json::Error) -> Self {
        DatasetError::Json(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = DatasetError::ShapeMismatch {
            values: (2, 3),
            mask: (3, 2),
        };
        assert_eq!(e.to_string(), "values matrix is 2x3 but mask is 3x2");
        let e = DatasetError::InvalidMask {
            row: 1,
            col: 2,
            value: 0.5,
        };
        assert!(e.to_string().contains("(1,2)"));
        let e = DatasetError::Parse {
            line: 7,
            message: "bad".into(),
        };
        assert!(e.to_string().contains("line 7"));
    }

    #[test]
    fn from_io_preserves_source() {
        use std::error::Error as _;
        let e: DatasetError = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(e.to_string().contains("gone"));
        assert!(e.source().is_some());
    }
}
