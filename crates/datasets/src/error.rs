//! Error type for dataset construction and IO.

use thiserror::Error;

/// Result alias using [`DatasetError`].
pub type Result<T> = std::result::Result<T, DatasetError>;

/// Errors from dataset construction, filtering, and IO.
#[derive(Debug, Error)]
pub enum DatasetError {
    /// Value and mask matrices differ in shape.
    #[error("values matrix is {}x{} but mask is {}x{}", values.0, values.1, mask.0, mask.1)]
    ShapeMismatch {
        /// Shape of the values matrix.
        values: (usize, usize),
        /// Shape of the mask matrix.
        mask: (usize, usize),
    },
    /// Mask entries must be exactly 0 or 1.
    #[error("mask entry at ({row},{col}) is {value}, expected 0 or 1")]
    InvalidMask {
        /// Row index of the offending entry.
        row: usize,
        /// Column index of the offending entry.
        col: usize,
        /// The invalid mask value.
        value: f64,
    },
    /// Observed distances must be finite and nonnegative.
    #[error("distance at ({row},{col}) is {value}, expected finite and >= 0")]
    InvalidDistance {
        /// Row index of the offending entry.
        row: usize,
        /// Column index of the offending entry.
        col: usize,
        /// The invalid distance.
        value: f64,
    },
    /// Operation requires a square matrix.
    #[error("operation requires a square matrix, got {}x{}", got.0, got.1)]
    NotSquare {
        /// Shape actually supplied.
        got: (usize, usize),
    },
    /// Underlying IO failure.
    #[error("io error: {0}")]
    Io(#[from] std::io::Error),
    /// JSON (de)serialization failure.
    #[error("serialization error: {0}")]
    Json(#[from] serde_json::Error),
    /// Malformed text-format matrix file.
    #[error("parse error at line {line}: {message}")]
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
}
