//! Property-based tests for the dataset layer.

use ides_datasets::{io, DistanceMatrix};
use ides_linalg::Matrix;
use proptest::prelude::*;

/// Strategy: a random square distance matrix with a random mask.
fn masked_matrix(n: usize) -> impl Strategy<Value = DistanceMatrix> {
    (
        prop::collection::vec(0.0f64..500.0, n * n),
        prop::collection::vec(prop::bool::ANY, n * n),
    )
        .prop_map(move |(vals, mask_bits)| {
            let mut values = Matrix::zeros(n, n);
            let mut mask = Matrix::zeros(n, n);
            for i in 0..n {
                for j in 0..n {
                    let k = i * n + j;
                    if i == j {
                        mask[(i, j)] = 1.0; // diagonal always observed (zero)
                    } else if mask_bits[k] {
                        values[(i, j)] = vals[k];
                        mask[(i, j)] = 1.0;
                    }
                }
            }
            DistanceMatrix::with_mask("prop", values, mask).expect("valid by construction")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Text round-trip preserves every observed entry and every hole.
    #[test]
    fn text_roundtrip(d in masked_matrix(6)) {
        let text = io::to_text(&d);
        let back = io::from_text("prop", &text).unwrap();
        prop_assert_eq!(back.shape(), d.shape());
        for i in 0..6 {
            for j in 0..6 {
                match (d.get(i, j), back.get(i, j)) {
                    (None, None) => {}
                    (Some(a), Some(b)) => prop_assert!((a - b).abs() < 1e-9),
                    (a, b) => prop_assert!(false, "mask mismatch at ({},{}) {:?} vs {:?}", i, j, a, b),
                }
            }
        }
    }

    /// JSON round-trip is lossless.
    #[test]
    fn json_roundtrip(d in masked_matrix(5)) {
        let json = serde_json::to_string(&d).unwrap();
        let back: DistanceMatrix = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back.shape(), d.shape());
        for i in 0..5 {
            for j in 0..5 {
                prop_assert_eq!(d.get(i, j), back.get(i, j));
            }
        }
    }

    /// filter_complete always yields a complete matrix whose entries match
    /// the original at the kept indices.
    #[test]
    fn filter_complete_postconditions(d in masked_matrix(8)) {
        let (filtered, kept) = d.filter_complete().unwrap();
        prop_assert!(filtered.is_complete());
        prop_assert_eq!(filtered.rows(), kept.len());
        for (fi, &oi) in kept.iter().enumerate() {
            for (fj, &oj) in kept.iter().enumerate() {
                prop_assert_eq!(filtered.get(fi, fj), d.get(oi, oj));
            }
        }
        // Kept indices are strictly increasing (stable order).
        for w in kept.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
    }

    /// filter_complete never removes a host from an already complete matrix.
    #[test]
    fn filter_complete_is_noop_on_complete(vals in prop::collection::vec(0.0f64..100.0, 25)) {
        let mut values = Matrix::from_vec(5, 5, vals).unwrap();
        for i in 0..5 {
            values[(i, i)] = 0.0;
        }
        let d = DistanceMatrix::full("c", values).unwrap();
        let (filtered, kept) = d.filter_complete().unwrap();
        prop_assert_eq!(kept.len(), 5);
        prop_assert_eq!(filtered.shape(), (5, 5));
    }

    /// observed_fraction and missing_count agree.
    #[test]
    fn observation_accounting(d in masked_matrix(7)) {
        let total = 49.0;
        let frac = d.observed_fraction();
        let missing = d.missing_count() as f64;
        prop_assert!(((total - missing) / total - frac).abs() < 1e-12);
    }

    /// Submatrix of a submatrix composes.
    #[test]
    fn submatrix_composes(d in masked_matrix(8)) {
        let first = d.submatrix(&[0, 2, 4, 6], &[1, 3, 5, 7]);
        let second = first.submatrix(&[1, 3], &[0, 2]);
        prop_assert_eq!(second.get(0, 0), d.get(2, 1));
        prop_assert_eq!(second.get(1, 1), d.get(6, 5));
    }
}
