//! Factorization-layer benchmarks: the blocked QR / SVD / symmetric-eig
//! decompositions against their unblocked references, on distance-matrix-
//! like inputs at 256–1024.
//!
//! The `factor` group extends the committed perf trajectory
//! (`BENCH_*.json`): `svd_blocked/512` vs `svd_jacobi/512` is the headline
//! within-group speedup ratio gated by `scripts/check_bench.sh`, with
//! `qr_blocked/512` vs `qr_unblocked/512` as the secondary claim (the
//! PR's acceptance bars are ≥4x and ≥2x respectively). The unblocked
//! references stop at 512: a single Jacobi SVD of a 1024² matrix runs
//! over a minute, which would dominate the whole suite for a baseline
//! whose scaling is already pinned at two smaller sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use ides_linalg::eig::{symmetric_eig, symmetric_eig_jacobi};
use ides_linalg::qr::{qr, reference::qr_unblocked};
use ides_linalg::svd::{svd, svd_jacobi};
use ides_linalg::{random, Matrix};

/// Distance-matrix-like input: positive, zero diagonal, near-low-rank —
/// the same generator the kernels benchmark uses.
fn test_matrix(n: usize) -> Matrix {
    let mut rng = random::seeded_rng(99);
    let base = random::uniform(n, 8, 0.5, 2.0, &mut rng);
    let mut m = base.matmul_tr(&base).unwrap().scale(10.0);
    for i in 0..n {
        m[(i, i)] = 0.0;
    }
    m
}

fn bench_factor(c: &mut Criterion) {
    let mut group = c.benchmark_group("factor");
    group.sample_size(3);
    // The CI smoke (CRITERION_QUICK=1) only gates the 512 within-group
    // ratio; skip the ~12 s/iter 1024 blocked runs there to keep the
    // smoke job fast. Full runs cover 256–1024.
    let quick = std::env::var("CRITERION_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false);
    let sizes: &[usize] = if quick {
        &[256, 512]
    } else {
        &[256, 512, 1024]
    };
    // Nominal LAPACK-convention flop counts for square n-by-n inputs, so
    // the emitted `gflops` fields are comparable across hosts: QR with Q
    // accumulation 8/3 n^3, full SVD (bidiagonalize + implicit-shift with
    // both bases) 16/3 n^3, symmetric eig (tridiagonalize + QL with
    // vectors) 14/3 n^3. These are conventions, not measured flops — the
    // iterative phases' true counts are matrix-dependent.
    let qr_flops = |n: u64| 8 * n.pow(3) / 3;
    let svd_flops = |n: u64| 16 * n.pow(3) / 3;
    let eig_flops = |n: u64| 14 * n.pow(3) / 3;
    for &n in sizes {
        let a = test_matrix(n);
        let mut sym = a.clone();
        sym.symmetrize();

        group.throughput(Throughput::Flops(qr_flops(n as u64)));
        group.bench_with_input(BenchmarkId::new("qr_blocked", n), &a, |b, a| {
            b.iter(|| qr(a).unwrap())
        });
        group.throughput(Throughput::Flops(svd_flops(n as u64)));
        group.bench_with_input(BenchmarkId::new("svd_blocked", n), &a, |b, a| {
            b.iter(|| svd(a).unwrap())
        });
        group.throughput(Throughput::Flops(eig_flops(n as u64)));
        group.bench_with_input(BenchmarkId::new("eig_blocked", n), &sym, |b, s| {
            b.iter(|| symmetric_eig(s).unwrap())
        });

        // Unblocked references: the honest "before" implementations, kept
        // to 256/512 (see module docs).
        if n <= 512 {
            group.throughput(Throughput::Flops(qr_flops(n as u64)));
            group.bench_with_input(BenchmarkId::new("qr_unblocked", n), &a, |b, a| {
                b.iter(|| qr_unblocked(a).unwrap())
            });
            group.throughput(Throughput::Flops(svd_flops(n as u64)));
            group.bench_with_input(BenchmarkId::new("svd_jacobi", n), &a, |b, a| {
                b.iter(|| svd_jacobi(a).unwrap())
            });
            group.throughput(Throughput::Flops(eig_flops(n as u64)));
            group.bench_with_input(BenchmarkId::new("eig_jacobi", n), &sym, |b, s| {
                b.iter(|| symmetric_eig_jacobi(s).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_factor);
criterion_main!(benches);
