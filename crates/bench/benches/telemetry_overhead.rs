//! Telemetry overhead on the serving hot path.
//!
//! The telemetry subsystem promises its enabled cost on the query path
//! stays within 10 % of the disabled baseline: a disabled site is one
//! relaxed atomic load, and an enabled query adds only that load plus a
//! 1-in-64-sampled span (query totals ride the engine's always-on
//! `ServiceStats` counter, whose pre-increment value doubles as the
//! sampling tick — no extra RMW or thread-local on the hot path). This
//! group measures the same single-estimate loop as
//! `serve/query_quiescent`, once with telemetry disabled and once
//! enabled:
//!
//! * `query_disabled/500` — telemetry off (the global flag short-circuits
//!   every recording site).
//! * `query_instrumented/500` — telemetry on: one in 64 queries records
//!   a trace span with two monotonic clock reads.
//!
//! `scripts/check_bench.sh` gates `disabled_ns / instrumented_ns >=
//! MIN_TELEMETRY_RATIO` (default 0.9, i.e. instrumented throughput must
//! stay >= 0.9x disabled). Ordering matters: the disabled pass runs
//! first so the instrumented pass cannot warm its caches.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ides::service::load::{self, ServeScenario};
use ides::service::ServiceConfig;
use ides::telemetry;

const LANDMARKS: usize = 64;
const DIM: usize = 16;
const HOSTS: usize = 500;
const SEED: u64 = 20041025;

fn scenario(hosts: usize) -> ServeScenario {
    load::synthetic_scenario(LANDMARKS, hosts, DIM, SEED, ServiceConfig::default())
        .expect("scenario")
}

fn bench_telemetry_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_overhead");
    group.sample_size(10);

    let s = scenario(HOSTS);
    let nodes = &s.nodes;

    telemetry::set_enabled(false);
    let mut i = 0usize;
    group.bench_function(BenchmarkId::new("query_disabled", HOSTS), |b| {
        b.iter(|| {
            i = i.wrapping_add(1);
            let a = nodes[i % nodes.len()];
            let bn = nodes[(i * 7 + 3) % nodes.len()];
            s.engine.estimate(a, bn).expect("estimate")
        })
    });

    telemetry::set_enabled(true);
    let mut j = 0usize;
    group.bench_function(BenchmarkId::new("query_instrumented", HOSTS), |b| {
        b.iter(|| {
            j = j.wrapping_add(1);
            let a = nodes[j % nodes.len()];
            let bn = nodes[(j * 7 + 3) % nodes.len()];
            s.engine.estimate(a, bn).expect("estimate")
        })
    });
    telemetry::set_enabled(false);
    // Drain what the instrumented pass recorded so the buffers don't
    // carry into any later group run in the same process.
    let spans = telemetry::take_spans();
    let stats = s.engine.stats();
    assert!(stats.queries > 0, "bench passes served no queries");
    assert!(
        !spans.is_empty(),
        "instrumented pass sampled no query spans"
    );
    eprintln!(
        "telemetry_overhead: {} queries counted, {} spans sampled",
        stats.queries,
        spans.len()
    );

    group.finish();
}

criterion_group!(benches, bench_telemetry_overhead);
criterion_main!(benches);
