//! Per-epoch streaming maintenance vs full refit: the PR-3 headline.
//!
//! A long-running information server at 500 ordinary hosts must absorb an
//! epoch of drifted measurements. The expensive control (`full_refit`)
//! re-fits the landmark model cold and re-joins every host; the streaming
//! tiers (`incremental` = rank-1 Gram surgery + re-join of the ~10 % of
//! hosts whose own measurements moved, `warm_refresh` = bounded 2-sweep
//! warm ALS refit + full re-join) ride the cached factorizations.
//! Acceptance: `incremental` ≥ 10x cheaper than `full_refit` at 500 hosts.
//!
//! Also times the `O(d²)` rank-1 cached-Gram row replacement against the
//! `O(k d² + d³)` refactorization it replaces.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ides::streaming::{EpochUpdate, MeasurementDelta, StalenessPolicy, StreamingServer};
use ides::BatchHostVectors;
use ides_datasets::DistanceMatrix;
use ides_linalg::solve::CachedGram;
use ides_linalg::Matrix;
use ides_netsim::drift::{DriftModel, DriftStream};

const LANDMARKS: usize = 20;
const HOSTS: usize = 500;
const DIM: usize = 8;

struct Setup {
    lm0: DistanceMatrix,
    meas: Matrix,
    update: EpochUpdate,
    /// Hosts the staleness policy would re-join this epoch (~10 %).
    affected: Vec<usize>,
}

fn setup() -> Setup {
    let ds = ides_datasets::generators::p2psim_like(LANDMARKS + HOSTS, 17).expect("dataset");
    let drift = DriftModel::new(0.2, 24.0, 17);
    let mut stream = DriftStream::new(&ds.topology, drift, ds.row_hosts.clone(), 1.0, 0.04);
    let full0 = stream.initial_matrix();
    let lm0 = DistanceMatrix::full(
        "lm0",
        Matrix::from_fn(LANDMARKS, LANDMARKS, |a, b| full0[(a, b)]),
    )
    .expect("landmark matrix");
    let meas = Matrix::from_fn(HOSTS, LANDMARKS, |h, l| full0[(LANDMARKS + h, l)]);

    // One epoch of drift: landmark-slab deltas feed `apply_epoch`; the
    // affected-host set models the policy's partial re-join (~10 %).
    let batch = stream.next().expect("epoch batch");
    let mut deltas = Vec::new();
    let mut touched = Vec::new();
    for s in &batch.samples {
        if s.j < LANDMARKS {
            deltas.push(MeasurementDelta {
                from: s.i,
                to: s.j,
                rtt: s.rtt,
            });
            deltas.push(MeasurementDelta {
                from: s.j,
                to: s.i,
                rtt: s.rtt,
            });
        } else if s.i < LANDMARKS && !touched.contains(&(s.j - LANDMARKS)) {
            touched.push(s.j - LANDMARKS);
        }
    }
    touched.sort_unstable();
    touched.truncate(HOSTS / 10);
    Setup {
        lm0,
        meas,
        update: EpochUpdate {
            epoch: batch.epoch,
            deltas,
        },
        affected: touched,
    }
}

fn bench_streaming_update(c: &mut Criterion) {
    let s = setup();
    let mut group = c.benchmark_group("streaming_update");
    group.sample_size(10);

    // Full refit: cold ALS fit of the landmark slab + re-join all hosts.
    {
        let mut server =
            StreamingServer::new(&s.lm0, DIM, StalenessPolicy::default()).expect("server");
        let mut coords = BatchHostVectors::new();
        group.bench_function(BenchmarkId::new("full_refit", HOSTS), |b| {
            b.iter(|| {
                server.full_refit().expect("refit");
                server
                    .join_batch_cached(&s.meas, &s.meas, &mut coords)
                    .expect("join");
            })
        });
    }

    // Incremental absorb: rank-1 Gram surgery on the touched landmarks +
    // re-join of the affected ~10 % of hosts.
    {
        let policy = StalenessPolicy {
            deviation_threshold: 0.5, // stay on the absorb tier
            ..StalenessPolicy::default()
        };
        let mut server = StreamingServer::new(&s.lm0, DIM, policy).expect("server");
        let mut coords = BatchHostVectors::new();
        server
            .join_batch_cached(&s.meas, &s.meas, &mut coords)
            .expect("initial join");
        group.bench_function(BenchmarkId::new("incremental", HOSTS), |b| {
            b.iter(|| {
                let outcome = server.apply_epoch(&s.update).expect("apply");
                assert!(!outcome.refreshed, "bench must stay on the absorb tier");
                server
                    .rejoin_affected(&s.affected, &s.meas, &s.meas, &mut coords)
                    .expect("rejoin");
            })
        });
    }

    // Warm refresh: threshold 0 forces the bounded 2-sweep warm refit and
    // a full re-join — the middle tier. Refreshing resets the staleness
    // baseline, so alternate the drifted values with the epoch-0 originals
    // to keep every iteration genuinely drifted.
    {
        let policy = StalenessPolicy {
            deviation_threshold: 0.0,
            ..StalenessPolicy::default()
        };
        let mut server = StreamingServer::new(&s.lm0, DIM, policy).expect("server");
        let revert = EpochUpdate {
            epoch: s.update.epoch + 1.0,
            deltas: s
                .update
                .deltas
                .iter()
                .map(|d| MeasurementDelta {
                    rtt: s.lm0.values()[(d.from, d.to)],
                    ..*d
                })
                .collect(),
        };
        let mut coords = BatchHostVectors::new();
        let mut forward = true;
        group.bench_function(BenchmarkId::new("warm_refresh", HOSTS), |b| {
            b.iter(|| {
                let update = if forward { &s.update } else { &revert };
                forward = !forward;
                let outcome = server.apply_epoch(update).expect("apply");
                assert!(outcome.refreshed);
                server
                    .join_batch_cached(&s.meas, &s.meas, &mut coords)
                    .expect("join");
            })
        });
    }

    // The primitive: O(d²) rank-1 row replacement vs O(k d² + d³)
    // refactorization of the cached join Gram — at the paper's scale
    // (20 landmarks, d=8) and at a deployment scale (256 references,
    // d=32) where the asymptotic gap dominates.
    {
        let server = StreamingServer::new(&s.lm0, DIM, StalenessPolicy::default()).expect("server");
        let designs = [
            server.model().y().clone(),
            Matrix::from_fn(256, 32, |i, j| {
                (0.31 * (i as f64 + 2.0) * (j as f64 + 1.0)).sin() + 0.5
            }),
        ];
        for y in &designs {
            let label = format!("{}x{}", y.rows(), y.cols());
            let mut gram = CachedGram::factor(y, 0.0).expect("gram");
            let old: Vec<f64> = y.row(3).to_vec();
            group.bench_function(BenchmarkId::new("gram_rank1", &label), |b| {
                b.iter(|| {
                    // Replace with itself: same arithmetic, stays valid.
                    gram.replace_row(&old, &old).expect("replace")
                })
            });
            group.bench_function(BenchmarkId::new("gram_refactor", &label), |b| {
                b.iter(|| gram.refactor(y).expect("refactor"))
            });
        }
    }

    group.finish();
}

criterion_group!(benches, bench_streaming_update);
criterion_main!(benches);
