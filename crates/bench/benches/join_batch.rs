//! Batched vs per-host joins: the PR-2 headline. One Cholesky/QR
//! factorization of the shared landmark system plus a multi-RHS GEMM
//! should beat re-factorizing per host by a wide margin once the batch is
//! large (acceptance: ≥ 3x at 500 hosts).
//!
//! Also times the end-to-end sharded evaluation sweep (`evaluate_ides`),
//! which drives the same batch path through gather → join → pair scoring.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ides::eval::evaluate_ides;
use ides::projection::{
    join_host_with, join_hosts_into, BatchHostVectors, JoinOptions, JoinSolver, JoinWorkspace,
};
use ides::system::{split_landmarks, IdesConfig};
use ides_datasets::generators::p2psim_like;
use ides_linalg::Matrix;

/// Deterministic measurement matrix (hosts x landmarks).
fn measurements(hosts: usize, k: usize, seed: u64) -> Matrix {
    let mut state = seed;
    Matrix::from_fn(hosts, k, |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as f64 / (1u64 << 31) as f64 * 80.0 + 1.0
    })
}

fn bench_join_batch(c: &mut Criterion) {
    let ds = p2psim_like(700, 41).expect("dataset");
    let (landmarks, _ordinary) = split_landmarks(700, 20, 2);
    let lm = ds.matrix.submatrix(&landmarks, &landmarks);
    let server = ides::system::InformationServer::build(&lm, IdesConfig::new(8)).expect("server");
    let x = server.model().x().clone();
    let y = server.model().y().clone();

    let mut group = c.benchmark_group("join_batch");
    group.sample_size(10);
    for hosts in [100usize, 500] {
        let d_out = measurements(hosts, landmarks.len(), 3);
        let d_in = measurements(hosts, landmarks.len(), 4);
        for (label, solver) in [
            ("qr", JoinSolver::Qr),
            ("normal_eq", JoinSolver::NormalEquations),
        ] {
            let opts = JoinOptions { solver, ridge: 0.0 };
            group.bench_with_input(
                BenchmarkId::new(format!("per_host_{label}"), hosts),
                &(&d_out, &d_in),
                |b, (d_out, d_in)| {
                    let mut ws = JoinWorkspace::new();
                    b.iter(|| {
                        for h in 0..hosts {
                            join_host_with(&mut ws, &x, &y, d_out.row(h), d_in.row(h), opts)
                                .expect("join");
                        }
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("batched_{label}"), hosts),
                &(&d_out, &d_in),
                |b, (d_out, d_in)| {
                    let mut ws = JoinWorkspace::new();
                    let mut batch = BatchHostVectors::new();
                    b.iter(|| {
                        join_hosts_into(&mut ws, &x, &y, d_out, d_in, opts, &mut batch)
                            .expect("batch join")
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_eval_sweep(c: &mut Criterion) {
    // End-to-end §6 sweep at a few hundred hosts: landmark fit + batched
    // joins + O(n²) pair scoring (sharded under `--features parallel`).
    let n = 300;
    let ds = p2psim_like(n, 43).expect("dataset");
    let (landmarks, ordinary) = split_landmarks(n, 20, 5);
    let mut group = c.benchmark_group("eval_sweep");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("ides_svd", n), |b| {
        b.iter(|| {
            evaluate_ides(&ds.matrix, &landmarks, &ordinary, IdesConfig::new(8)).expect("eval")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_join_batch, bench_eval_sweep);
criterion_main!(benches);
