//! The serving engine under load: coalesced vs per-request admission,
//! and query latency quiescent vs under active drift.
//!
//! Scale: the shared deployment scenario (64 landmarks, d = 16, 500
//! admitted hosts) — the scale where a per-request admission (one QR
//! factorization + one snapshot publish per request) costs enough that
//! the coalescer's one-batched-solve-per-flush amortization matters. At
//! the paper's 20×8 toy scale a single join is ~2µs and coordination
//! overhead wins; see the `serve_load` experiment's module docs.
//!
//! * `coalesced_join/500` vs `per_request_join/500` — one iteration is a
//!   wave of 500 **concurrent** joiners: a persistent pool of 500 worker
//!   threads rendezvouses at a barrier, each admits one host (through
//!   `QueryEngine::join` / `QueryEngine::join_per_request`), and the wave
//!   is retired in one `leave_many` so the table stays bounded. The pool
//!   persists across iterations, so thread spawning never enters the
//!   timing. The within-group ratio is the CI-gated serving headline
//!   (acceptance: coalesced ≥ 5x).
//! * `query_quiescent/500` vs `query_under_drift/500` — single estimates
//!   against a 500-host snapshot, with and without a writer thread
//!   continuously applying drift epochs. The snapshot design promises
//!   drift does not stall readers (acceptance: p99 within 2x, measured
//!   with full histograms by the `serve_load` experiment; here the
//!   medians must tell the same story).

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Barrier;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ides::service::load::{self, ServeScenario};
use ides::service::{NodeId, ServiceConfig};

const LANDMARKS: usize = 64;
const DIM: usize = 16;
const HOSTS: usize = 500;
const SEED: u64 = 20041025;

fn scenario(hosts: usize) -> ServeScenario {
    load::synthetic_scenario(LANDMARKS, hosts, DIM, SEED, ServiceConfig::default())
        .expect("scenario")
}

fn bench_serve(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve");
    group.sample_size(10);

    // Admission: engine starts empty; each iteration is one wave of 500
    // concurrent joiners from a persistent worker pool (spawned once,
    // synchronized by barriers, so only admission work is timed).
    {
        let s = scenario(0);
        let rows = scenario(HOSTS).host_rows;
        let start = Barrier::new(HOSTS + 1);
        let done = Barrier::new(HOSTS + 1);
        let coalesced = AtomicBool::new(true);
        let shutdown = AtomicBool::new(false);
        let slots: Vec<AtomicUsize> = (0..HOSTS).map(|_| AtomicUsize::new(0)).collect();
        std::thread::scope(|scope| {
            for (w, (d_out, d_in)) in rows.iter().enumerate() {
                let (engine, start, done) = (&s.engine, &start, &done);
                let (coalesced, shutdown, slots) = (&coalesced, &shutdown, &slots);
                scope.spawn(move || loop {
                    start.wait();
                    if shutdown.load(Ordering::Relaxed) {
                        break;
                    }
                    let joined = if coalesced.load(Ordering::Relaxed) {
                        engine.join(d_out, d_in)
                    } else {
                        engine.join_per_request(d_out, d_in)
                    };
                    let NodeId::Host(slot) = joined.expect("admission join") else {
                        panic!("join returned a landmark")
                    };
                    slots[w].store(slot, Ordering::Relaxed);
                    done.wait();
                });
            }
            let run_wave = |is_coalesced: bool| {
                coalesced.store(is_coalesced, Ordering::Relaxed);
                start.wait();
                done.wait();
                let ids: Vec<NodeId> = slots
                    .iter()
                    .map(|s| NodeId::Host(s.load(Ordering::Relaxed)))
                    .collect();
                s.engine.leave_many(&ids).expect("leave wave");
            };
            group.bench_function(BenchmarkId::new("coalesced_join", HOSTS), |b| {
                b.iter(|| run_wave(true))
            });
            group.bench_function(BenchmarkId::new("per_request_join", HOSTS), |b| {
                b.iter(|| run_wave(false))
            });
            shutdown.store(true, Ordering::Relaxed);
            start.wait();
        });
    }

    // Query latency against a fully admitted snapshot.
    {
        let s = scenario(HOSTS);
        let nodes = &s.nodes;
        let mut i = 0usize;
        group.bench_function(BenchmarkId::new("query_quiescent", HOSTS), |b| {
            b.iter(|| {
                i = i.wrapping_add(1);
                let a = nodes[i % nodes.len()];
                let bn = nodes[(i * 7 + 3) % nodes.len()];
                s.engine.estimate(a, bn).expect("estimate")
            })
        });

        // Same measurement with a writer continuously applying drift
        // epochs (2ms apart) in the background.
        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let writer = scope.spawn(|| {
                let mut epoch = s.engine.snapshot().epoch();
                let mut k = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    std::thread::sleep(Duration::from_millis(2));
                    if s.drift_updates.is_empty() {
                        continue;
                    }
                    epoch += 1.0;
                    let mut u = s.drift_updates[k % s.drift_updates.len()].clone();
                    u.epoch = epoch;
                    s.engine.apply_epoch(&u).expect("drift epoch");
                    k += 1;
                }
            });
            let mut j = 0usize;
            group.bench_function(BenchmarkId::new("query_under_drift", HOSTS), |b| {
                b.iter(|| {
                    j = j.wrapping_add(1);
                    let a = nodes[j % nodes.len()];
                    let bn = nodes[(j * 7 + 3) % nodes.len()];
                    s.engine.estimate(a, bn).expect("estimate")
                })
            });
            stop.store(true, Ordering::Relaxed);
            writer.join().expect("drift writer panicked");
        });
    }

    group.finish();
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
