//! Linear-algebra kernel benchmarks: the primitives every IDES operation
//! reduces to.
//!
//! The `matmul` group is the headline perf-trajectory series: it times the
//! blocked kernel layer against both naive baselines — the textbook `ijk`
//! triple loop and the seed's row-streaming `ikj` loop that was
//! `Matrix::matmul` before the kernel layer landed — so every future
//! kernel change can be judged against the same fixed reference points.
//! `scripts/run_benches.sh` snapshots these records into the committed
//! `BENCH_*.json` files.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use ides_linalg::kernels::{self, reference};
use ides_linalg::qr::qr;
use ides_linalg::svd::{svd, svd_truncated, TruncatedSvdOptions};
use ides_linalg::{random, Matrix};

fn test_matrix(n: usize) -> Matrix {
    let mut rng = random::seeded_rng(99);
    // Distance-matrix-like: positive, zero diagonal, cluster structure.
    let base = random::uniform(n, 8, 0.5, 2.0, &mut rng);
    let mut m = base.matmul_tr(&base).unwrap().scale(10.0);
    for i in 0..n {
        m[(i, i)] = 0.0;
    }
    m
}

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    group.sample_size(10);
    for n in [64usize, 128, 256, 512] {
        let a = test_matrix(n);
        // Nominal flop convention for a square n-by-n product: 2n^3
        // (one multiply + one add per inner-loop step), so the emitted
        // `gflops` field is comparable across hosts and kernel back ends.
        group.throughput(Throughput::Flops(2 * (n as u64).pow(3)));
        group.bench_with_input(BenchmarkId::new("blocked", n), &a, |b, a| {
            b.iter(|| a.matmul(a).unwrap())
        });
        // The same blocked kernel forced onto the portable scalar tile:
        // the within-run `blocked/n : blocked_scalar/n` ratio is the
        // host-independent SIMD-speedup gate in `scripts/check_bench.sh`.
        if n >= 256 {
            group.bench_with_input(BenchmarkId::new("blocked_scalar", n), &a, |b, a| {
                let mut out = vec![0.0f64; n * n];
                b.iter(|| {
                    kernels::gemm_with_isa(
                        kernels::Isa::Scalar,
                        a.as_slice(),
                        kernels::Op::NoTrans,
                        n,
                        a.as_slice(),
                        kernels::Op::NoTrans,
                        n,
                        &mut out,
                        n,
                        n,
                        n,
                    );
                    out[0]
                })
            });
        }
        group.bench_with_input(BenchmarkId::new("seed_ikj", n), &a, |b, a| {
            b.iter(|| reference::matmul_ikj(a, a).unwrap())
        });
        // The textbook loop is very slow at 512; bench it at every size
        // anyway — it is the fixed "naive" reference the speedup
        // acceptance is measured against.
        group.bench_with_input(BenchmarkId::new("naive_ijk", n), &a, |b, a| {
            b.iter(|| reference::matmul_ijk(a, a).unwrap())
        });
    }
    group.finish();
}

fn bench_gemm_variants(c: &mut Criterion) {
    // The transposed products the NMF/ALS inner loops lean on, at the
    // shapes those loops use them: skinny factors against a square matrix.
    let mut group = c.benchmark_group("gemm_variants");
    group.sample_size(10);
    let n = 512;
    let k = 10;
    let d = test_matrix(n);
    let mut rng = random::seeded_rng(7);
    let x = random::uniform(n, k, 0.1, 1.0, &mut rng);
    let y = random::uniform(n, k, 0.1, 1.0, &mut rng);
    group.bench_function("tr_matmul_gram_512x10", |b| {
        b.iter(|| y.tr_matmul(&y).unwrap())
    });
    group.bench_function("matmul_skinny_512x10", |b| b.iter(|| d.matmul(&y).unwrap()));
    group.bench_function("matmul_tr_recon_512x10", |b| {
        b.iter(|| x.matmul_tr(&y).unwrap())
    });
    let v: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
    group.bench_function("matvec_512", |b| b.iter(|| d.matvec(&v).unwrap()));
    group.bench_function("tr_matvec_512", |b| b.iter(|| d.tr_matvec(&v).unwrap()));
    group.finish();
}

fn bench_svd(c: &mut Criterion) {
    let mut group = c.benchmark_group("svd");
    group.sample_size(10);
    for n in [32usize, 64, 110] {
        let a = test_matrix(n);
        group.bench_with_input(BenchmarkId::new("exact_jacobi", n), &a, |b, a| {
            b.iter(|| svd(a).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("truncated_d10", n), &a, |b, a| {
            b.iter(|| svd_truncated(a, 10, TruncatedSvdOptions::default()).unwrap())
        });
    }
    // The truncated path is the one that must scale to P2PSim size.
    let big = test_matrix(512);
    group.bench_function("truncated_d10/512", |b| {
        b.iter(|| svd_truncated(&big, 10, TruncatedSvdOptions::default()).unwrap())
    });
    group.finish();
}

fn bench_qr(c: &mut Criterion) {
    let mut group = c.benchmark_group("qr");
    group.sample_size(10);
    for n in [32usize, 110] {
        let a = test_matrix(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &a, |b, a| {
            b.iter(|| qr(a).unwrap())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_matmul,
    bench_gemm_variants,
    bench_svd,
    bench_qr
);
criterion_main!(benches);
