//! Linear-algebra kernel benchmarks: the primitives every IDES operation
//! reduces to. Useful for spotting regressions in the from-scratch kernels
//! and for the exact-vs-truncated SVD ablation called out in DESIGN.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ides_linalg::qr::qr;
use ides_linalg::svd::{svd, svd_truncated, TruncatedSvdOptions};
use ides_linalg::{random, Matrix};

fn test_matrix(n: usize) -> Matrix {
    let mut rng = random::seeded_rng(99);
    // Distance-matrix-like: positive, zero diagonal, cluster structure.
    let base = random::uniform(n, 8, 0.5, 2.0, &mut rng);
    let mut m = base.matmul_tr(&base).unwrap().scale(10.0);
    for i in 0..n {
        m[(i, i)] = 0.0;
    }
    m
}

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    group.sample_size(10);
    for n in [64usize, 128, 256] {
        let a = test_matrix(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &a, |b, a| {
            b.iter(|| a.matmul(a).unwrap())
        });
    }
    group.finish();
}

fn bench_svd(c: &mut Criterion) {
    let mut group = c.benchmark_group("svd");
    group.sample_size(10);
    for n in [32usize, 64, 110] {
        let a = test_matrix(n);
        group.bench_with_input(BenchmarkId::new("exact_jacobi", n), &a, |b, a| {
            b.iter(|| svd(a).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("truncated_d10", n), &a, |b, a| {
            b.iter(|| svd_truncated(a, 10, TruncatedSvdOptions::default()).unwrap())
        });
    }
    // The truncated path is the one that must scale to P2PSim size.
    let big = test_matrix(512);
    group.bench_function("truncated_d10/512", |b| {
        b.iter(|| svd_truncated(&big, 10, TruncatedSvdOptions::default()).unwrap())
    });
    group.finish();
}

fn bench_qr(c: &mut Criterion) {
    let mut group = c.benchmark_group("qr");
    group.sample_size(10);
    for n in [32usize, 110] {
        let a = test_matrix(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &a, |b, a| {
            b.iter(|| qr(a).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_matmul, bench_svd, bench_qr);
criterion_main!(benches);
