//! Serial vs dependency-DAG epoch application: the PR-8 headline.
//!
//! One mixed maintenance epoch — landmark measurement deltas to absorb
//! plus ~10 % of ordinary hosts to re-join — applied through
//! `StreamingServer::apply_epoch_planned` in three configurations:
//! `serial` pins the executor to one thread (the plan degenerates to the
//! exact serial solve/commit schedule), `dag` is the production automatic
//! policy (ambient thread cap, per-level fan-out clamped by work size),
//! and `forced4` pins four scoped threads with the heuristic bypassed.
//! The committed state is bit-identical in all three (asserted by
//! tests/dag_determinism.rs); the bench measures what planning and
//! fan-out cost or buy. Acceptance (`check_bench.sh`): `dag` ≥ 0.9x
//! `serial` even on a single-core runner — planning overhead plus the
//! auto policy's fan-out decisions must stay noise-level. `forced4` is
//! deliberately ungated: at this epoch's grain (d = 8, microsecond
//! nodes) it documents the spawn cost the auto clamp exists to avoid.
//!
//! Run at 500 and 5000 hosts so the rejoin tier (which dominates at scale
//! and is where the DAG's width lives) is measured at both the classic
//! scale and a deployment scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ides::streaming::{
    EpochUpdate, MeasurementDelta, RejoinTables, StalenessPolicy, StreamingServer,
};
use ides::BatchHostVectors;
use ides_datasets::DistanceMatrix;
use ides_linalg::Matrix;

const LANDMARKS: usize = 20;
const DIM: usize = 8;

struct Setup {
    server: StreamingServer,
    meas: Matrix,
    update: EpochUpdate,
    affected: Vec<usize>,
    coords: BatchHostVectors,
}

/// Deterministic synthetic measurement value (positive, host-varied) —
/// cheap enough to build a 5000-host table without a full NxN dataset.
fn meas_value(h: usize, l: usize) -> f64 {
    20.0 + 10.0 * ((0.37 * (h as f64 + 1.0) + 0.91 * (l as f64 + 1.0)).sin() + 1.0)
}

fn setup(hosts: usize) -> Setup {
    let ds = ides_datasets::generators::p2psim_like(LANDMARKS + 20, 17).expect("dataset");
    let sub: Vec<usize> = (0..LANDMARKS).collect();
    let lm0 = DistanceMatrix::full("lm0", ds.matrix.submatrix(&sub, &sub).values().clone())
        .expect("landmark matrix");
    let policy = StalenessPolicy {
        deviation_threshold: 0.5, // stay on the absorb tier
        ..StalenessPolicy::default()
    };
    let server = StreamingServer::new(&lm0, DIM, policy).expect("server");
    let meas = Matrix::from_fn(hosts, LANDMARKS, meas_value);

    // Mixed epoch: drift 8 distinct landmarks (16 directed deltas -> 8
    // independent absorb nodes) and re-join ~10 % of the hosts (one
    // rejoin node each, all dependent on every absorb).
    let mut deltas = Vec::new();
    for i in 0..8usize {
        let j = (i + 9) % LANDMARKS;
        let rtt = lm0.values()[(i, j)] * 1.02;
        deltas.push(MeasurementDelta {
            from: i,
            to: j,
            rtt,
        });
        deltas.push(MeasurementDelta {
            from: j,
            to: i,
            rtt,
        });
    }
    let affected: Vec<usize> = (0..hosts).step_by(10).collect();
    let mut coords = BatchHostVectors::new();
    server
        .join_batch_cached(&meas, &meas, &mut coords)
        .expect("initial join");
    Setup {
        server,
        meas,
        update: EpochUpdate { epoch: 1.0, deltas },
        affected,
        coords,
    }
}

fn bench_epoch_apply(c: &mut Criterion) {
    let mut group = c.benchmark_group("epoch_apply");
    group.sample_size(10);

    for &hosts in &[500usize, 5000] {
        for (label, threads) in [
            ("serial", Some(1usize)),
            ("dag", None),
            ("forced4", Some(4)),
        ] {
            let mut s = setup(hosts);
            // Report the executed plan's shape once per configuration
            // (same epoch every iteration => same plan).
            let (outcome, stats) = s
                .server
                .apply_epoch_planned(
                    &s.update,
                    Some(RejoinTables::full(
                        &s.affected,
                        &s.meas,
                        &s.meas,
                        &mut s.coords,
                    )),
                    threads,
                )
                .expect("warmup epoch");
            assert!(!outcome.refreshed, "bench must stay on the absorb tier");
            eprintln!(
                "epoch_apply/{label}/{hosts}: plan nodes={} groups={} max_width={} critical_path={}",
                stats.nodes, stats.groups, stats.max_width, stats.critical_path
            );
            group.bench_function(BenchmarkId::new(label, hosts), |b| {
                b.iter(|| {
                    s.server
                        .apply_epoch_planned(
                            &s.update,
                            Some(RejoinTables::full(
                                &s.affected,
                                &s.meas,
                                &s.meas,
                                &mut s.coords,
                            )),
                            threads,
                        )
                        .expect("apply")
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_epoch_apply);
criterion_main!(benches);
