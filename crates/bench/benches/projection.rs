//! Host-join solver ablation (DESIGN.md §5): the paper writes the join as
//! normal equations (Eqs. 13–14); we default to Householder QR. This bench
//! quantifies the cost of each solver, plus the NNLS variant, at realistic
//! landmark counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ides::projection::{join_host, JoinOptions, JoinSolver};
use ides::system::{split_landmarks, IdesConfig, InformationServer};
use ides_datasets::generators::nlanr_like;

fn bench_join(c: &mut Criterion) {
    let ds = nlanr_like(110, 55).expect("dataset");
    let mut group = c.benchmark_group("host_join");
    group.sample_size(10);
    for m in [20usize, 50] {
        let (landmarks, ordinary) = split_landmarks(110, m, 2);
        let lm = ds.matrix.submatrix(&landmarks, &landmarks);
        let server = InformationServer::build(&lm, IdesConfig::new(8)).expect("server");
        let h = ordinary[0];
        let d_out: Vec<f64> = landmarks
            .iter()
            .map(|&l| ds.matrix.get(h, l).unwrap())
            .collect();
        let d_in: Vec<f64> = landmarks
            .iter()
            .map(|&l| ds.matrix.get(l, h).unwrap())
            .collect();

        for (label, solver) in [
            ("qr", JoinSolver::Qr),
            ("normal_eq", JoinSolver::NormalEquations),
            ("nnls", JoinSolver::NonNegative),
        ] {
            group.bench_with_input(
                BenchmarkId::new(label, format!("{m}_landmarks")),
                &(
                    server.model().x().clone(),
                    server.model().y().clone(),
                    d_out.clone(),
                    d_in.clone(),
                ),
                |b, (x, y, d_out, d_in)| {
                    let opts = JoinOptions { solver, ridge: 0.0 };
                    b.iter(|| join_host(x, y, d_out, d_in, opts).expect("join"))
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_join);
criterion_main!(benches);
