//! Scale serving: publish cost vs table size, and sharded vs single
//! query throughput at a million hosts.
//!
//! The chunk-tree snapshot promises publish cost **independent of table
//! size** (O(changed chunks), not O(hosts)), and horizontal sharding
//! promises query cost independent of shard count. Both are measured
//! here at the scale where the old flat-clone publish was hopeless:
//!
//! * `publish_churn/1x` vs `publish_churn/10x` — one iteration is one
//!   join + one leave (two publishes) against a single engine grown to
//!   10⁵ then 10⁶ admitted hosts (10⁴ → 10⁵ under `CRITERION_QUICK=1`).
//!   With flat snapshot clones the 10x point would cost ~10× the 1x
//!   point; with the chunk tree both copy a handful of chunks, so the
//!   gated within-run ratio stays near 1 (acceptance: ≤ 2x).
//! * `qps/shards{1,2,4,8}` — single-threaded closed-loop estimates
//!   against a [`ShardedEngine`] holding the 10x population, one group
//!   per shard count over the same substrate. A query reads two rows
//!   through at most two shard snapshots regardless of N, so per-query
//!   cost — and therefore single-core qps — must stay flat as shards
//!   grow (gated: each sharded qps ≥ `MIN_SHARD_QPS_RATIO` × the
//!   1-shard qps). On a multi-core host the shards' writer locks are
//!   disjoint, so aggregate qps under concurrent writers scales with N;
//!   the snapshot's top-level `cores` field records what this machine
//!   could actually exercise.
//!
//! The deployment comes from `load::scale_scenario`: topology-direct
//! generation (no O(n²) measured matrix) and bulk `join_many` admission
//! in 65 536-row batches — a million hosts admitted in tens of
//! publishes rather than a million.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ides::service::load::{self, ServeScenario};
use ides::service::{ServiceConfig, ShardedEngine};

const LANDMARKS: usize = 32;
const DIM: usize = 8;
const SEED: u64 = 20041025;

fn quick() -> bool {
    std::env::var("CRITERION_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

fn base_hosts() -> usize {
    if quick() {
        10_000
    } else {
        100_000
    }
}

fn scale(hosts: usize, shards: usize) -> ServeScenario<ShardedEngine> {
    load::scale_scenario(
        LANDMARKS,
        hosts,
        DIM,
        SEED,
        shards,
        ServiceConfig::default(),
    )
    .expect("scale scenario")
}

fn bench_serve_sharded(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_sharded");
    group.sample_size(10);
    let base = base_hosts();
    let big = base * 10;

    // Publish cost vs table size: the same single-shard engine, churned
    // (join + leave = two publishes per iteration) at 1x and again after
    // growing the table to 10x. Chunk-tree publishes copy O(changed
    // chunks), so the 10x median must stay within 2x of the 1x median
    // (CI-gated within-run).
    {
        let s = scale(base, 1);
        let (d_out, d_in) = &s.host_rows[0];
        group.bench_function(BenchmarkId::new("publish_churn", "1x"), |b| {
            b.iter(|| {
                let id = s.engine.join_direct(d_out, d_in).expect("churn join");
                s.engine.leave(id).expect("churn leave");
            })
        });
    }
    {
        let s = scale(big, 1);
        let (d_out, d_in) = &s.host_rows[0];
        group.bench_function(BenchmarkId::new("publish_churn", "10x"), |b| {
            b.iter(|| {
                let id = s.engine.join_direct(d_out, d_in).expect("churn join");
                s.engine.leave(id).expect("churn leave");
            })
        });
    }

    // Query throughput vs shard count at the 10x population. One
    // iteration is one estimate; the node walk mixes landmark-host and
    // host-host (cross-shard) pairs deterministically.
    for shards in [1usize, 2, 4, 8] {
        let s = scale(big, shards);
        assert_eq!(s.engine.stats().joins as usize, big);
        let nodes = &s.nodes;
        let mut i = 0usize;
        group.bench_function(BenchmarkId::new("qps", format!("shards{shards}")), |b| {
            b.iter(|| {
                i = i.wrapping_add(1);
                let a = nodes[(i * 2654435761) % nodes.len()];
                let bn = nodes[(i * 40503 + 7) % nodes.len()];
                s.engine.estimate(a, bn).expect("estimate")
            })
        });
    }

    group.finish();
}

criterion_group!(benches, bench_serve_sharded);
criterion_main!(benches);
