//! Barriered vs cross-epoch-pipelined batch application: the PR-9
//! headline.
//!
//! A four-epoch maintenance batch — landmark drift to absorb plus every
//! ordinary host carrying a **partial observed set** (8 of 20 landmarks)
//! — applied two ways:
//!
//! * `barriered_*`: one `apply_epoch_planned` per epoch; plan, absorb
//!   tier, and rejoin tier run back-to-back.
//! * `pipelined_*`: one `apply_epochs_pipelined` call; epoch `N`'s rejoin
//!   tier overlaps epoch `N+1`'s plan + absorb phases on a scoped thread.
//!
//! Both are bit-identical (asserted by tests/pipeline_determinism.rs);
//! the bench measures what the overlap buys. Two drift shapes:
//!
//! * `*_localized`: drift confined to 4 of 20 landmarks (20 %). Half the
//!   hosts observe only undrifted landmarks, so the dependency-exact
//!   planner elides them entirely — the plan shape assertion below pins
//!   the claim that the pruned plan's critical path is strictly shorter
//!   than the conservative full-table plan's.
//! * `*_global`: drift touches 16 of 20 landmarks; every host observes at
//!   least one drifted landmark and nothing can be pruned — the worst
//!   case the planner must not regress.
//!
//! Acceptance (`check_bench.sh`): pipelined >= MIN_PIPELINE_RATIO
//! (default 0.6 — below a loaded single-core runner's noise band; quiet
//! runs measure 0.9–1.1x) x barriered on the localized shape at 500 and 5000
//! hosts, within-run. The two sizes straddle
//! `StalenessPolicy::min_pipeline_hosts` (default 1024) on purpose: at
//! 500 hosts the automatic thread policy *declines* the pipeline (the
//! worker spawn + per-epoch hand-off would outweigh a sub-millisecond
//! rejoin tier) and the pair gates that the clamp keeps small batches at
//! parity; at 5000 hosts the worker genuinely engages — >= 1.0 expected
//! on a multi-core runner (set MIN_PIPELINE_RATIO=1.0 there), ~1x minus
//! the hand-off on a single-core one (mirroring MIN_DAG_RATIO's honesty
//! note).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ides::streaming::{
    EpochUpdate, MeasurementDelta, RejoinTables, StalenessPolicy, StreamingServer,
};
use ides::BatchHostVectors;
use ides_datasets::DistanceMatrix;
use ides_linalg::Matrix;

const LANDMARKS: usize = 20;
const DIM: usize = 6;
const EPOCHS: usize = 4;
/// Landmarks each host observes: enough for a well-posed subset solve
/// (>= DIM), far fewer than the full table.
const SUBSET: usize = 8;

struct Setup {
    server: StreamingServer,
    meas: Matrix,
    updates: Vec<EpochUpdate>,
    affected: Vec<usize>,
    observed: Vec<Vec<usize>>,
    coords: BatchHostVectors,
}

/// Deterministic synthetic measurement value (positive, host-varied).
fn meas_value(h: usize, l: usize) -> f64 {
    20.0 + 10.0 * ((0.37 * (h as f64 + 1.0) + 0.91 * (l as f64 + 1.0)).sin() + 1.0)
}

/// Directed drift deltas over the given landmark pairs at a fixed factor
/// (idempotent across epochs: absolute RTTs, not increments).
fn drift_deltas(lm: &DistanceMatrix, pairs: &[(usize, usize)]) -> Vec<MeasurementDelta> {
    let mut deltas = Vec::new();
    for &(i, j) in pairs {
        let rtt = lm.values()[(i, j)] * 1.02;
        deltas.push(MeasurementDelta {
            from: i,
            to: j,
            rtt,
        });
        deltas.push(MeasurementDelta {
            from: j,
            to: i,
            rtt,
        });
    }
    deltas
}

fn setup(hosts: usize, localized: bool) -> Setup {
    let ds = ides_datasets::generators::p2psim_like(LANDMARKS + 20, 17).expect("dataset");
    let sub: Vec<usize> = (0..LANDMARKS).collect();
    let lm0 = DistanceMatrix::full("lm0", ds.matrix.submatrix(&sub, &sub).values().clone())
        .expect("landmark matrix");
    let policy = StalenessPolicy {
        deviation_threshold: 0.5, // stay on the absorb tier
        ..StalenessPolicy::default()
    };
    let mut server = StreamingServer::new(&lm0, DIM, policy).expect("server");
    let meas = Matrix::from_fn(hosts, LANDMARKS, meas_value);

    // Localized: drift confined to landmarks 16..19 (20 % of the model).
    // Global: drift spread over 16 of the 20 landmarks.
    let pairs: Vec<(usize, usize)> = if localized {
        vec![(16, 17), (18, 19), (16, 19), (17, 18)]
    } else {
        (0..8).map(|i| (i, (i + 9) % LANDMARKS)).collect()
    };
    let updates: Vec<EpochUpdate> = (1..=EPOCHS)
        .map(|e| EpochUpdate {
            epoch: e as f64,
            deltas: drift_deltas(&lm0, &pairs),
        })
        .collect();

    // Every host is affected and carries a partial observed set: even
    // hosts watch the high landmarks 12..19 (drifted under both shapes),
    // odd hosts watch 0..7 (untouched by the localized shape -> elided).
    let affected: Vec<usize> = (0..hosts).collect();
    let observed: Vec<Vec<usize>> = affected
        .iter()
        .map(|&h| {
            if h % 2 == 0 {
                (LANDMARKS - SUBSET..LANDMARKS).collect()
            } else {
                (0..SUBSET).collect()
            }
        })
        .collect();

    let mut coords = BatchHostVectors::new();
    server
        .join_batch_cached(&meas, &meas, &mut coords)
        .expect("initial join");
    // Priming epoch: establishes the coords-current invariant the
    // measured iterations attest, and pre-drifts the landmark matrix so
    // every measured epoch re-applies identical RTTs (steady state).
    server
        .apply_epoch_planned(
            &EpochUpdate {
                epoch: 0.5,
                deltas: drift_deltas(&lm0, &pairs),
            },
            Some(RejoinTables {
                hosts: &affected,
                d_out: &meas,
                d_in: &meas,
                coords: &mut coords,
                observed: Some(&observed),
                coords_current: false,
            }),
            None,
        )
        .expect("priming epoch");
    Setup {
        server,
        meas,
        updates,
        affected,
        observed,
        coords,
    }
}

/// Pins the tentpole plan-shape claims before timing anything.
///
/// 1. **Elision**: with the coords-current attestation, every bystander
///    host (subset disjoint from the localized drift) is pruned from the
///    plan outright — half the rejoin nodes vanish.
/// 2. **Critical-path collapse**: for the bystanders alone (no
///    attestation, so they do plan), the dependency-exact subset plan
///    schedules them at level 0 — critical path strictly shorter than
///    the conservative full-table (`Observed::All`) plan, which parks
///    every rejoin behind every absorb.
fn assert_localized_plan_collapses(hosts: usize) {
    let mut s = setup(hosts, true);
    let update = s.updates[0].clone();
    let (outcome, pruned_stats) = s
        .server
        .apply_epoch_planned(
            &update,
            Some(RejoinTables {
                hosts: &s.affected,
                d_out: &s.meas,
                d_in: &s.meas,
                coords: &mut s.coords,
                observed: Some(&s.observed),
                coords_current: true,
            }),
            None,
        )
        .expect("pruned plan");
    assert!(!outcome.refreshed, "bench must stay on the absorb tier");
    assert_eq!(
        pruned_stats.pruned,
        hosts / 2,
        "bystander hosts must be elided"
    );

    // Bystanders only, no currency attestation: the subset plan puts them
    // at level 0; the full-table plan chains them behind the absorbs.
    let bystanders: Vec<usize> = s.affected.iter().copied().filter(|h| h % 2 == 1).collect();
    let bystander_obs: Vec<Vec<usize>> = bystanders.iter().map(|_| (0..SUBSET).collect()).collect();
    let (_, subset_stats) = s
        .server
        .apply_epoch_planned(
            &update,
            Some(RejoinTables {
                hosts: &bystanders,
                d_out: &s.meas,
                d_in: &s.meas,
                coords: &mut s.coords,
                observed: Some(&bystander_obs),
                coords_current: false,
            }),
            None,
        )
        .expect("subset plan");
    let (_, full_stats) = s
        .server
        .apply_epoch_planned(
            &update,
            Some(RejoinTables::full(
                &bystanders,
                &s.meas,
                &s.meas,
                &mut s.coords,
            )),
            None,
        )
        .expect("full plan");
    eprintln!(
        "epoch_pipeline/{hosts}: attested plan nodes={} pruned={} pruning={:.1}% | \
         bystander subset plan critical_path={} pruning={:.1}% | full plan critical_path={}",
        pruned_stats.nodes,
        pruned_stats.pruned,
        pruned_stats.pruning() * 100.0,
        subset_stats.critical_path,
        subset_stats.pruning() * 100.0,
        full_stats.critical_path
    );
    assert!(
        subset_stats.critical_path < full_stats.critical_path,
        "dependency-exact critical path {} must beat the full plan's {}",
        subset_stats.critical_path,
        full_stats.critical_path
    );
}

fn bench_epoch_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("epoch_pipeline");
    group.sample_size(10);

    for &hosts in &[500usize, 5000] {
        assert_localized_plan_collapses(hosts);
        for localized in [true, false] {
            let shape = if localized { "localized" } else { "global" };
            // Barriered: one planned epoch at a time, rejoin tier inline.
            let mut s = setup(hosts, localized);
            group.bench_function(BenchmarkId::new(format!("barriered_{shape}"), hosts), |b| {
                b.iter(|| {
                    for u in &s.updates {
                        s.server
                            .apply_epoch_planned(
                                u,
                                Some(RejoinTables {
                                    hosts: &s.affected,
                                    d_out: &s.meas,
                                    d_in: &s.meas,
                                    coords: &mut s.coords,
                                    observed: Some(&s.observed),
                                    coords_current: true,
                                }),
                                None,
                            )
                            .expect("barriered epoch");
                    }
                })
            });
            // Pipelined: the whole batch through the stage hand-off.
            let mut s = setup(hosts, localized);
            let report = s
                .server
                .apply_epochs_pipelined(
                    &s.updates,
                    Some(RejoinTables {
                        hosts: &s.affected,
                        d_out: &s.meas,
                        d_in: &s.meas,
                        coords: &mut s.coords,
                        observed: Some(&s.observed),
                        coords_current: true,
                    }),
                    None,
                )
                .expect("warmup batch");
            let expected_overlap = if hosts >= StalenessPolicy::default().min_pipeline_hosts {
                EPOCHS - 1
            } else {
                0 // below the work clamp the auto policy runs barriered
            };
            assert_eq!(
                report.overlapped, expected_overlap,
                "overlap must match the min_pipeline_hosts clamp"
            );
            group.bench_function(BenchmarkId::new(format!("pipelined_{shape}"), hosts), |b| {
                b.iter(|| {
                    s.server
                        .apply_epochs_pipelined(
                            &s.updates,
                            Some(RejoinTables {
                                hosts: &s.affected,
                                d_out: &s.meas,
                                d_in: &s.meas,
                                coords: &mut s.coords,
                                observed: Some(&s.observed),
                                coords_current: true,
                            }),
                            None,
                        )
                        .expect("pipelined batch")
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_epoch_pipeline);
criterion_main!(benches);
