//! Criterion companion to Table 1: model-build time for IDES/SVD,
//! IDES/NMF, ICS and GNP (landmark fit + all ordinary-host joins).
//!
//! The `table1` experiment binary prints the one-shot wall-clock numbers at
//! paper scale; this bench gives statistically robust timings at a reduced
//! scale so the *ratios* (the reproduced result) are trustworthy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ides::eval::{evaluate_gnp, evaluate_ics, evaluate_ides};
use ides::system::{split_landmarks, IdesConfig};
use ides_datasets::generators::{gnp_like, nlanr_like};
use ides_datasets::GeneratedDataset;
use ides_mf::gnp::GnpConfig;

struct Case {
    name: &'static str,
    ds: GeneratedDataset,
    landmarks: Vec<usize>,
    ordinary: Vec<usize>,
}

fn cases() -> Vec<Case> {
    let gnp = gnp_like(19, 77).expect("gnp dataset");
    let (gl, go) = split_landmarks(19, 15, 1);
    let nlanr = nlanr_like(60, 78).expect("nlanr dataset");
    let (nl, no) = split_landmarks(60, 20, 1);
    vec![
        Case {
            name: "gnp19",
            ds: gnp,
            landmarks: gl,
            ordinary: go,
        },
        Case {
            name: "nlanr60",
            ds: nlanr,
            landmarks: nl,
            ordinary: no,
        },
    ]
}

fn bench_table1(c: &mut Criterion) {
    let dim = 8;
    let mut group = c.benchmark_group("table1_build");
    group.sample_size(10);
    for case in cases() {
        group.bench_with_input(BenchmarkId::new("ides_svd", case.name), &case, |b, case| {
            b.iter(|| {
                evaluate_ides(
                    &case.ds.matrix,
                    &case.landmarks,
                    &case.ordinary,
                    IdesConfig::new(dim),
                )
                .expect("ides/svd")
            })
        });
        group.bench_with_input(BenchmarkId::new("ides_nmf", case.name), &case, |b, case| {
            b.iter(|| {
                evaluate_ides(
                    &case.ds.matrix,
                    &case.landmarks,
                    &case.ordinary,
                    IdesConfig::nmf(dim),
                )
                .expect("ides/nmf")
            })
        });
        group.bench_with_input(BenchmarkId::new("ics", case.name), &case, |b, case| {
            b.iter(|| {
                evaluate_ics(&case.ds.matrix, &case.landmarks, &case.ordinary, dim).expect("ics")
            })
        });
        // GNP is orders of magnitude slower (that *is* Table 1's point);
        // keep its budget small so the bench suite completes.
        let gnp_cfg = GnpConfig {
            landmark_evals: 20_000,
            host_evals: 1_000,
            ..GnpConfig::new(dim)
        };
        group.bench_with_input(BenchmarkId::new("gnp", case.name), &case, |b, case| {
            b.iter(|| {
                evaluate_gnp(&case.ds.matrix, &case.landmarks, &case.ordinary, gnp_cfg)
                    .expect("gnp")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
