//! NMF iteration-budget ablation (DESIGN.md §5): the paper claims "two
//! hundred iterations suffice". This bench times NMF at several iteration
//! budgets and init strategies so the time/accuracy trade-off can be read
//! off together with the error traces from the fig3 experiment.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ides_datasets::generators::nlanr_like;
use ides_mf::nmf::{fit, NmfConfig, NmfInit};

fn bench_nmf(c: &mut Criterion) {
    let ds = nlanr_like(110, 66).expect("dataset");
    let mut group = c.benchmark_group("nmf");
    group.sample_size(10);
    for iterations in [50usize, 200, 500] {
        group.bench_with_input(
            BenchmarkId::new("svd_init", iterations),
            &iterations,
            |b, &iterations| {
                let cfg = NmfConfig {
                    iterations,
                    ..NmfConfig::new(10)
                };
                b.iter(|| fit(&ds.matrix, cfg).expect("nmf fit"))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("random_init", iterations),
            &iterations,
            |b, &iterations| {
                let cfg = NmfConfig {
                    iterations,
                    init: NmfInit::Random,
                    ..NmfConfig::new(10)
                };
                b.iter(|| fit(&ds.matrix, cfg).expect("nmf fit"))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_nmf);
criterion_main!(benches);
