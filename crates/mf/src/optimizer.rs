//! Nelder–Mead ("Simplex Downhill") minimizer.
//!
//! GNP fits its Euclidean embedding with Simplex Downhill; the paper
//! repeatedly points at its drawbacks (slow convergence, sensitivity to
//! initialization, hard-to-tune parameters) as motivation for the
//! closed-form SVD/NMF approach, so a faithful baseline needs the real
//! algorithm, warts and all.

/// Options for [`nelder_mead`].
#[derive(Debug, Clone, Copy)]
pub struct NelderMeadOptions {
    /// Maximum objective evaluations.
    pub max_evals: usize,
    /// Terminate when the simplex's objective spread falls below this.
    pub f_tolerance: f64,
    /// Initial simplex step per coordinate.
    pub initial_step: f64,
}

impl Default for NelderMeadOptions {
    fn default() -> Self {
        NelderMeadOptions {
            max_evals: 20_000,
            f_tolerance: 1e-9,
            initial_step: 1.0,
        }
    }
}

/// Result of a Nelder–Mead run.
#[derive(Debug, Clone)]
pub struct NelderMeadResult {
    /// Best point found.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub fx: f64,
    /// Objective evaluations performed.
    pub evals: usize,
}

/// Minimizes `f` from `x0` by the Nelder–Mead simplex method
/// (reflection/expansion/contraction/shrink with standard coefficients).
pub fn nelder_mead(
    f: impl Fn(&[f64]) -> f64,
    x0: &[f64],
    opts: NelderMeadOptions,
) -> NelderMeadResult {
    let n = x0.len();
    assert!(n > 0, "cannot optimize zero-dimensional input");
    let (alpha, gamma, rho, sigma) = (1.0, 2.0, 0.5, 0.5);

    let mut evals = 0usize;
    let eval = |x: &[f64], evals: &mut usize| -> f64 {
        *evals += 1;
        f(x)
    };

    // Initial simplex: x0 plus a step along each axis.
    let mut simplex: Vec<(Vec<f64>, f64)> = Vec::with_capacity(n + 1);
    let f0 = eval(x0, &mut evals);
    simplex.push((x0.to_vec(), f0));
    for i in 0..n {
        let mut xi = x0.to_vec();
        xi[i] += if x0[i].abs() > 1e-8 {
            0.05 * x0[i].abs().max(opts.initial_step)
        } else {
            opts.initial_step
        };
        let fi = eval(&xi, &mut evals);
        simplex.push((xi, fi));
    }

    while evals < opts.max_evals {
        simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite objective"));
        let spread = simplex[n].1 - simplex[0].1;
        if spread.abs() < opts.f_tolerance {
            break;
        }
        // Centroid of all but the worst.
        let mut centroid = vec![0.0; n];
        for (x, _) in simplex.iter().take(n) {
            for (c, &xi) in centroid.iter_mut().zip(x.iter()) {
                *c += xi;
            }
        }
        for c in &mut centroid {
            *c /= n as f64;
        }
        let worst = simplex[n].clone();

        let reflect: Vec<f64> = centroid
            .iter()
            .zip(worst.0.iter())
            .map(|(&c, &w)| c + alpha * (c - w))
            .collect();
        let f_reflect = eval(&reflect, &mut evals);

        if f_reflect < simplex[0].1 {
            // Try expanding further.
            let expand: Vec<f64> = centroid
                .iter()
                .zip(worst.0.iter())
                .map(|(&c, &w)| c + gamma * (c - w))
                .collect();
            let f_expand = eval(&expand, &mut evals);
            simplex[n] = if f_expand < f_reflect {
                (expand, f_expand)
            } else {
                (reflect, f_reflect)
            };
        } else if f_reflect < simplex[n - 1].1 {
            simplex[n] = (reflect, f_reflect);
        } else {
            // Contract towards the better of worst/reflected.
            let (base, f_base) = if f_reflect < worst.1 {
                (&reflect, f_reflect)
            } else {
                (&worst.0, worst.1)
            };
            let contract: Vec<f64> = centroid
                .iter()
                .zip(base.iter())
                .map(|(&c, &b)| c + rho * (b - c))
                .collect();
            let f_contract = eval(&contract, &mut evals);
            if f_contract < f_base {
                simplex[n] = (contract, f_contract);
            } else {
                // Shrink everything towards the best point.
                let best = simplex[0].0.clone();
                for entry in simplex.iter_mut().skip(1) {
                    for (xi, &bi) in entry.0.iter_mut().zip(best.iter()) {
                        *xi = bi + sigma * (*xi - bi);
                    }
                    entry.1 = eval(&entry.0, &mut evals);
                }
            }
        }
    }
    simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite objective"));
    NelderMeadResult {
        x: simplex[0].0.clone(),
        fx: simplex[0].1,
        evals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_quadratic() {
        let f = |x: &[f64]| (x[0] - 3.0).powi(2) + (x[1] + 1.0).powi(2) + 5.0;
        let r = nelder_mead(f, &[0.0, 0.0], NelderMeadOptions::default());
        assert!((r.x[0] - 3.0).abs() < 1e-3, "{:?}", r.x);
        assert!((r.x[1] + 1.0).abs() < 1e-3, "{:?}", r.x);
        assert!((r.fx - 5.0).abs() < 1e-5);
    }

    #[test]
    fn minimizes_rosenbrock_2d() {
        let f = |x: &[f64]| (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2);
        let r = nelder_mead(
            f,
            &[-1.2, 1.0],
            NelderMeadOptions {
                max_evals: 50_000,
                ..Default::default()
            },
        );
        assert!(r.fx < 1e-6, "fx = {}", r.fx);
        assert!((r.x[0] - 1.0).abs() < 1e-2);
    }

    #[test]
    fn respects_eval_budget() {
        let f = |x: &[f64]| x.iter().map(|v| v * v).sum::<f64>();
        let r = nelder_mead(
            f,
            &[10.0; 8],
            NelderMeadOptions {
                max_evals: 100,
                ..Default::default()
            },
        );
        // Budget may be slightly exceeded inside a shrink step, never wildly.
        assert!(r.evals <= 100 + 10, "{} evals", r.evals);
    }

    #[test]
    fn already_optimal_start() {
        let f = |x: &[f64]| x[0] * x[0];
        let r = nelder_mead(f, &[0.0], NelderMeadOptions::default());
        assert!(r.fx < 1e-9);
    }

    #[test]
    fn higher_dimensional_sphere() {
        let f = |x: &[f64]| x.iter().map(|v| (v - 2.0) * (v - 2.0)).sum::<f64>();
        let r = nelder_mead(
            f,
            &[0.0; 6],
            NelderMeadOptions {
                max_evals: 100_000,
                ..Default::default()
            },
        );
        for &xi in &r.x {
            assert!((xi - 2.0).abs() < 1e-2, "{:?}", r.x);
        }
    }

    #[test]
    #[should_panic(expected = "zero-dimensional")]
    fn empty_input_rejected() {
        nelder_mead(|_| 0.0, &[], NelderMeadOptions::default());
    }
}
