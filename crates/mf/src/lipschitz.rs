//! Lipschitz embedding + PCA baseline (ICS \[12\] / Virtual Landmark \[20\]).
//!
//! Each host is first embedded by its vector of distances to the landmark
//! set (the Lipschitz embedding), then projected to `d` dimensions by PCA,
//! and finally calibrated by a scalar linear normalization so that
//! Euclidean distances in the projected space match the measured distances
//! in scale. The paper's Figure 3 shows this baseline is ~5× less accurate
//! than SVD/NMF at d = 10.

use ides_datasets::DistanceMatrix;
use ides_linalg::pca::{self, Pca};
use ides_linalg::Matrix;

use crate::error::{MfError, Result};
use crate::model::{DistanceEstimator, EuclideanModel};

/// A fitted Lipschitz+PCA model: PCA projection plus linear calibration.
#[derive(Debug, Clone)]
pub struct LipschitzPca {
    projection: Pca,
    /// Scalar calibration applied to projected Euclidean distances.
    scale: f64,
    /// Calibrated host coordinates.
    model: EuclideanModel,
}

impl LipschitzPca {
    /// Fits the model on a fully observed square distance matrix, using all
    /// hosts as Lipschitz landmarks (the reconstruction setting of Fig. 3).
    pub fn fit(data: &DistanceMatrix, dim: usize) -> Result<Self> {
        if !data.is_square() {
            return Err(MfError::InvalidInput(
                "Lipschitz embedding needs a square matrix".into(),
            ));
        }
        if !data.is_complete() {
            return Err(MfError::InvalidInput(
                "Lipschitz+PCA cannot handle missing entries; filter first".into(),
            ));
        }
        Self::fit_landmarks(data, dim)
    }

    /// Fits using the rows of `data` as hosts and columns as landmarks
    /// (`data` may be rectangular: `n x m` distances-to-landmarks).
    pub fn fit_landmarks(data: &DistanceMatrix, dim: usize) -> Result<Self> {
        if data.rows() == 0 || data.cols() == 0 {
            return Err(MfError::InvalidInput("empty matrix".into()));
        }
        if dim == 0 {
            return Err(MfError::InvalidInput("dimension must be at least 1".into()));
        }
        let lipschitz = data.values();
        let projection = pca::fit(lipschitz, dim.min(data.cols()))?;
        let coords = projection.transform(lipschitz)?;
        // Linear normalization: find α minimizing Σ (D_ij − α e_ij)² over
        // observed pairs, where e_ij are raw projected distances. Only
        // meaningful for square (host × host) data; for rectangular input
        // calibrate on the landmark columns that are also rows, else skip.
        let raw = EuclideanModel::new(coords);
        let scale = if data.is_square() {
            calibrate(&raw, data)
        } else {
            1.0
        };
        let calibrated = EuclideanModel::new(raw.coords().scale(scale));
        Ok(LipschitzPca {
            projection,
            scale,
            model: calibrated,
        })
    }

    /// The calibrated Euclidean model over the training hosts.
    pub fn model(&self) -> &EuclideanModel {
        &self.model
    }

    /// Calibration factor α.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Embeds a *new* host from its Lipschitz vector (distances to the same
    /// landmark set used in training), returning calibrated coordinates.
    pub fn embed(&self, distances_to_landmarks: &[f64]) -> Result<Vec<f64>> {
        let mut scratch = Vec::new();
        let mut out = Vec::new();
        self.embed_into(distances_to_landmarks, &mut scratch, &mut out)?;
        Ok(out)
    }

    /// Allocation-free variant of [`LipschitzPca::embed`]: writes the
    /// calibrated coordinates into `out` (resized to the model dimension),
    /// reusing both buffers' capacity across calls.
    pub fn embed_into(
        &self,
        distances_to_landmarks: &[f64],
        scratch: &mut Vec<f64>,
        out: &mut Vec<f64>,
    ) -> Result<()> {
        out.clear();
        out.resize(self.projection.dim(), 0.0);
        self.projection
            .transform_row_into(distances_to_landmarks, scratch, out)?;
        for c in out.iter_mut() {
            *c *= self.scale;
        }
        Ok(())
    }

    /// Embeds a whole **batch** of new hosts at once: each row of `rows` is
    /// one host's Lipschitz vector, and row `h` of the result holds that
    /// host's calibrated coordinates.
    ///
    /// The projection of the entire batch is a single `hosts x m` by
    /// `m x d` GEMM on the blocked kernel layer, so embedding many hosts
    /// costs one matrix product instead of per-host matrix-vector products.
    /// Rows are embedded independently, so sharding a batch cannot change
    /// any host's coordinates.
    pub fn embed_batch(&self, rows: &Matrix) -> Result<Matrix> {
        let mut coords = self.projection.transform(rows)?;
        coords.map_inplace(|c| c * self.scale);
        Ok(coords)
    }

    /// Estimated distance between two embedded coordinate vectors.
    pub fn distance(a: &[f64], b: &[f64]) -> f64 {
        EuclideanModel::distance(a, b)
    }

    /// Truncates a fitted model to its leading `d` principal components,
    /// recalibrating the scale on `data`.
    ///
    /// PCA components nest (the d-dimensional projection is the first `d`
    /// coordinates of the wider one), so a dimension sweep can fit once at
    /// the maximum dimension and truncate — identical results to refitting
    /// at each `d`, at a fraction of the cost.
    pub fn truncate(&self, data: &DistanceMatrix, d: usize) -> Result<Self> {
        let d = d.min(self.model.dim());
        if d == 0 {
            return Err(MfError::InvalidInput("dimension must be at least 1".into()));
        }
        let cols: Vec<usize> = (0..d).collect();
        // Undo the previous calibration before re-estimating it.
        let raw_coords = self
            .model
            .coords()
            .select_cols(&cols)
            .scale(1.0 / self.scale);
        let raw = EuclideanModel::new(raw_coords);
        let scale = if data.is_square() {
            calibrate(&raw, data)
        } else {
            1.0
        };
        let projection = Pca {
            mean: self.projection.mean.clone(),
            components: self.projection.components.select_cols(&cols),
            explained_variance: self.projection.explained_variance[..d].to_vec(),
        };
        Ok(LipschitzPca {
            projection,
            scale,
            model: EuclideanModel::new(raw.coords().scale(scale)),
        })
    }
}

impl crate::model::BatchEmbed for LipschitzPca {
    /// Deterministic embedder: `ids` are ignored.
    fn embed_batch(&self, rows: &Matrix, _ids: &[u64]) -> Result<Matrix> {
        LipschitzPca::embed_batch(self, rows)
    }
}

impl DistanceEstimator for LipschitzPca {
    fn estimate(&self, i: usize, j: usize) -> f64 {
        self.model.estimate(i, j)
    }
    fn n_from(&self) -> usize {
        self.model.n_from()
    }
    fn n_to(&self) -> usize {
        self.model.n_to()
    }
}

/// Least-squares scalar fit: α = Σ D e / Σ e² over off-diagonal pairs.
fn calibrate(raw: &EuclideanModel, data: &DistanceMatrix) -> f64 {
    let mut num = 0.0;
    let mut den = 0.0;
    for (i, j, d) in data.observed_entries() {
        if i == j {
            continue;
        }
        let e = raw.estimate(i, j);
        num += d * e;
        den += e * e;
    }
    if den > 0.0 {
        num / den
    } else {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{reconstruction_errors, Cdf};
    use crate::svd_model::{self, SvdConfig};

    fn euclidean_dataset(n: usize) -> DistanceMatrix {
        // Points on a 2-D grid: distances are exactly Euclidean, so
        // Lipschitz+PCA (d>=2) should reconstruct them very well.
        let coords: Vec<(f64, f64)> = (0..n)
            .map(|i| ((i % 5) as f64 * 10.0, (i / 5) as f64 * 10.0))
            .collect();
        let values = Matrix::from_fn(n, n, |i, j| {
            let (xi, yi) = coords[i];
            let (xj, yj) = coords[j];
            ((xi - xj).powi(2) + (yi - yj).powi(2)).sqrt()
        });
        DistanceMatrix::full("euclid", values).unwrap()
    }

    #[test]
    fn reconstructs_euclidean_data_reasonably() {
        // Lipschitz rows are not an isometry even for perfectly Euclidean
        // data (only a contraction), so we expect decent-but-imperfect
        // reconstruction — exactly the weakness the paper exploits.
        let data = euclidean_dataset(20);
        let model = LipschitzPca::fit(&data, 4).unwrap();
        let errs = reconstruction_errors(&model, &data);
        let cdf = Cdf::new(errs);
        assert!(cdf.median() < 0.15, "median error {}", cdf.median());
    }

    #[test]
    fn calibration_fixes_scale() {
        let data = euclidean_dataset(15);
        let model = LipschitzPca::fit(&data, 3).unwrap();
        // Average predicted / actual ratio near 1 after calibration.
        let mut ratio_sum = 0.0;
        let mut count = 0;
        for (i, j, d) in data.observed_entries() {
            if i != j && d > 0.0 {
                ratio_sum += model.estimate(i, j) / d;
                count += 1;
            }
        }
        let mean_ratio = ratio_sum / count as f64;
        assert!((mean_ratio - 1.0).abs() < 0.15, "mean ratio {mean_ratio}");
    }

    #[test]
    fn embed_new_host_consistent_with_training() {
        let data = euclidean_dataset(12);
        let model = LipschitzPca::fit(&data, 3).unwrap();
        // "New" host = training host 4's Lipschitz row: its embedding must
        // land on host 4's coordinates.
        let row: Vec<f64> = (0..12).map(|j| data.get(4, j).unwrap()).collect();
        let emb = model.embed(&row).unwrap();
        let train = model.model().coord(4);
        for (a, b) in emb.iter().zip(train.iter()) {
            assert!((a - b).abs() < 1e-9, "{emb:?} vs {train:?}");
        }
    }

    #[test]
    fn worse_than_svd_on_policy_routed_data() {
        // The paper's headline comparison (Fig. 3): on data with routing
        // violations, SVD reconstruction beats Lipschitz+PCA clearly.
        let ds = ides_datasets::generators::nlanr_like(50, 17).unwrap();
        let dim = 10;
        let svd = svd_model::fit(&ds.matrix, SvdConfig::new(dim)).unwrap();
        let lip = LipschitzPca::fit(&ds.matrix, dim).unwrap();
        let svd_med = Cdf::new(reconstruction_errors(&svd, &ds.matrix)).median();
        let lip_med = Cdf::new(reconstruction_errors(&lip, &ds.matrix)).median();
        assert!(
            svd_med < lip_med,
            "SVD median {svd_med} should beat Lipschitz {lip_med}"
        );
    }

    #[test]
    fn embed_batch_matches_per_host_embed() {
        let data = euclidean_dataset(14);
        let model = LipschitzPca::fit(&data, 3).unwrap();
        let rows = Matrix::from_fn(6, 14, |h, j| data.get(h + 2, j).unwrap() + 0.1 * h as f64);
        let batch = model.embed_batch(&rows).unwrap();
        assert_eq!(batch.shape(), (6, 3));
        for h in 0..6 {
            let single = model.embed(rows.row(h)).unwrap();
            for j in 0..3 {
                assert!(
                    (batch[(h, j)] - single[j]).abs() < 1e-10,
                    "host {h}: {:?} vs {single:?}",
                    batch.row(h)
                );
            }
        }
        // Shard independence: embedding a sub-batch reproduces the same rows
        // bit for bit.
        let sub = Matrix::from_fn(2, 14, |h, j| rows[(h + 3, j)]);
        let sub_batch = model.embed_batch(&sub).unwrap();
        for h in 0..2 {
            for j in 0..3 {
                assert_eq!(sub_batch[(h, j)].to_bits(), batch[(h + 3, j)].to_bits());
            }
        }
    }

    #[test]
    fn symmetric_estimates() {
        let ds = ides_datasets::generators::gnp_like(19, 2).unwrap();
        let lip = LipschitzPca::fit(&ds.matrix, 5).unwrap();
        for i in 0..5 {
            for j in 0..5 {
                assert!((lip.estimate(i, j) - lip.estimate(j, i)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn rejects_bad_input() {
        let rect = DistanceMatrix::full("r", Matrix::zeros(3, 4)).unwrap();
        assert!(LipschitzPca::fit(&rect, 2).is_err());
        let sq = euclidean_dataset(5);
        assert!(LipschitzPca::fit(&sq, 0).is_err());
    }

    #[test]
    fn truncate_matches_refit() {
        let ds = ides_datasets::generators::gnp_like(19, 8).unwrap();
        let wide = LipschitzPca::fit(&ds.matrix, 12).unwrap();
        for d in [2usize, 5, 8] {
            let truncated = wide.truncate(&ds.matrix, d).unwrap();
            let refit = LipschitzPca::fit(&ds.matrix, d).unwrap();
            for i in 0..5 {
                for j in 0..5 {
                    let a = truncated.estimate(i, j);
                    let b = refit.estimate(i, j);
                    // Eigenvector signs may flip but distances must agree.
                    assert!((a - b).abs() < 1e-6 * (1.0 + b), "d={d}: {a} vs {b}");
                }
            }
        }
        assert!(wide.truncate(&ds.matrix, 0).is_err());
    }

    #[test]
    fn rectangular_landmark_fit() {
        // 10 hosts x 4 landmarks rectangular input via fit_landmarks.
        let values = Matrix::from_fn(10, 4, |i, j| ((i + 1) * (j + 2)) as f64);
        let data = DistanceMatrix::full("rect", values).unwrap();
        let model = LipschitzPca::fit_landmarks(&data, 2).unwrap();
        assert_eq!(model.model().coords().shape(), (10, 2));
        assert_eq!(model.scale(), 1.0);
    }
}
