//! GNP baseline (Ng & Zhang): Euclidean embedding fit by Simplex Downhill.
//!
//! GNP minimizes the sum of *relative* errors (Eq. 3 of the paper):
//! `Σ |D_ij − D̂_ij| / D_ij`. Landmark coordinates are fit jointly; each
//! ordinary host is then fit independently against the landmark positions.
//! The paper's Table 1 shows this is orders of magnitude slower than
//! IDES/ICS — a property this implementation faithfully reproduces by
//! using the same optimizer.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ides_datasets::DistanceMatrix;
use ides_linalg::Matrix;

use crate::error::{MfError, Result};
use crate::model::{DistanceEstimator, EuclideanModel};
use crate::optimizer::{nelder_mead, NelderMeadOptions};

/// Configuration for the GNP fit.
#[derive(Debug, Clone, Copy)]
pub struct GnpConfig {
    /// Embedding dimensionality.
    pub dim: usize,
    /// Objective-evaluation budget for the joint landmark fit (split over
    /// the restarts).
    pub landmark_evals: usize,
    /// Random restarts of the joint landmark fit (GNP keeps the best of
    /// several Simplex Downhill runs).
    pub restarts: usize,
    /// Objective-evaluation budget per ordinary host fit.
    pub host_evals: usize,
    /// RNG seed for coordinate initialization.
    pub seed: u64,
}

impl GnpConfig {
    /// Defaults sized like the original GNP software's settings.
    pub fn new(dim: usize) -> Self {
        GnpConfig {
            dim,
            landmark_evals: 120_000,
            restarts: 4,
            host_evals: 4_000,
            seed: 42,
        }
    }
}

/// A fitted GNP model over the landmark set.
#[derive(Debug, Clone)]
pub struct GnpModel {
    /// Landmark coordinates, `m x d`.
    landmarks: Matrix,
    dim: usize,
    /// The configuration the landmarks were fit with; reused as the default
    /// for batched host fits ([`GnpModel::fit_hosts`] / [`BatchEmbed`]).
    config: GnpConfig,
}

impl GnpModel {
    /// Fits landmark coordinates from the (square, fully observed)
    /// landmark-to-landmark distance matrix by joint Simplex Downhill on
    /// the summed relative error.
    pub fn fit_landmarks(data: &DistanceMatrix, config: GnpConfig) -> Result<Self> {
        if !data.is_square() {
            return Err(MfError::InvalidInput(
                "GNP landmark matrix must be square".into(),
            ));
        }
        if !data.is_complete() {
            return Err(MfError::InvalidInput(
                "GNP cannot handle missing entries".into(),
            ));
        }
        let m = data.rows();
        if m < 2 || config.dim == 0 {
            return Err(MfError::InvalidInput(
                "need >= 2 landmarks and dim >= 1".into(),
            ));
        }
        let d = config.dim;
        let mut rng = StdRng::seed_from_u64(config.seed);
        // Initialize coordinates at the scale of the measured distances.
        let spread = data.mean_distance().max(1.0);

        let values = data.values().clone();
        let objective = |coords: &[f64]| -> f64 {
            let mut total = 0.0;
            for i in 0..m {
                for j in (i + 1)..m {
                    let dij = values[(i, j)];
                    if dij <= 0.0 {
                        continue;
                    }
                    let est = euclid(&coords[i * d..(i + 1) * d], &coords[j * d..(j + 1) * d]);
                    total += (dij - est).abs() / dij;
                }
            }
            total
        };

        // Best-of-restarts, then a polishing run from the winner with a
        // fresh (smaller) simplex — plain Nelder–Mead stalls in high
        // dimension when the simplex collapses, and a restart recovers it.
        let restarts = config.restarts.max(1);
        let budget = (config.landmark_evals / (restarts + 1)).max(1_000);
        let mut best: Option<(Vec<f64>, f64)> = None;
        for _ in 0..restarts {
            let x0: Vec<f64> = (0..m * d).map(|_| rng.gen_range(-spread..spread)).collect();
            let r = nelder_mead(
                objective,
                &x0,
                NelderMeadOptions {
                    max_evals: budget,
                    f_tolerance: 1e-8,
                    initial_step: spread * 0.25,
                },
            );
            if best.as_ref().is_none_or(|(_, f)| r.fx < *f) {
                best = Some((r.x, r.fx));
            }
        }
        let (start, _) = best.expect("at least one restart ran");
        let polished = nelder_mead(
            objective,
            &start,
            NelderMeadOptions {
                max_evals: budget,
                f_tolerance: 1e-9,
                initial_step: spread * 0.05,
            },
        );
        let landmarks = Matrix::from_vec(m, d, polished.x)?;
        Ok(GnpModel {
            landmarks,
            dim: d,
            config,
        })
    }

    /// The configuration the landmark fit ran with.
    pub fn config(&self) -> GnpConfig {
        self.config
    }

    /// Fits the coordinates of a whole **batch** of ordinary hosts: row `h`
    /// of `rows` holds host `h`'s measured distances to the landmarks, and
    /// `seeds[h]` seeds its simplex initialization (the evaluation harness
    /// passes the host's global id, keeping results independent of batch
    /// composition). Returns the `hosts x d` coordinate matrix.
    ///
    /// Each host's Simplex Downhill fit is independent, so this is the
    /// shard-friendly GNP counterpart of the GEMM-backed IDES batch join:
    /// no cross-host factorization exists to share, but the batch entry
    /// point lets the sharded evaluation driver treat all three systems
    /// uniformly.
    pub fn fit_hosts(&self, rows: &Matrix, config: GnpConfig, seeds: &[u64]) -> Result<Matrix> {
        if seeds.len() != rows.rows() {
            return Err(MfError::InvalidInput(format!(
                "expected one seed per host: {} hosts, {} seeds",
                rows.rows(),
                seeds.len()
            )));
        }
        let mut coords = Matrix::zeros(rows.rows(), self.dim);
        for (h, &seed) in seeds.iter().enumerate() {
            let x = self.fit_host(rows.row(h), config, seed)?;
            coords.row_mut(h).copy_from_slice(&x);
        }
        Ok(coords)
    }

    /// Fits the coordinates of one ordinary host from its measured
    /// distances to the landmarks (the per-host phase of GNP).
    pub fn fit_host(
        &self,
        distances_to_landmarks: &[f64],
        config: GnpConfig,
        host_seed: u64,
    ) -> Result<Vec<f64>> {
        let m = self.landmarks.rows();
        if distances_to_landmarks.len() != m {
            return Err(MfError::InvalidInput(format!(
                "expected {m} landmark distances, got {}",
                distances_to_landmarks.len()
            )));
        }
        let d = self.dim;
        let mut rng =
            StdRng::seed_from_u64(config.seed ^ host_seed.wrapping_mul(0x9E3779B97F4A7C15));
        // Start at the centroid of the landmarks plus noise — standard GNP.
        let mut x0 = vec![0.0; d];
        for i in 0..m {
            for (k, x) in x0.iter_mut().enumerate() {
                *x += self.landmarks[(i, k)] / m as f64;
            }
        }
        let spread = distances_to_landmarks
            .iter()
            .copied()
            .fold(0.0_f64, f64::max)
            .max(1.0);
        for x in &mut x0 {
            *x += rng.gen_range(-0.1 * spread..0.1 * spread);
        }
        let landmarks = &self.landmarks;
        let objective = |coords: &[f64]| -> f64 {
            let mut total = 0.0;
            for (i, &dij) in distances_to_landmarks.iter().enumerate() {
                if dij <= 0.0 {
                    continue;
                }
                let est = euclid(coords, landmarks.row(i));
                total += (dij - est).abs() / dij;
            }
            total
        };
        let first = nelder_mead(
            objective,
            &x0,
            NelderMeadOptions {
                max_evals: config.host_evals / 2,
                f_tolerance: 1e-9,
                initial_step: spread * 0.2,
            },
        );
        // Polish with a fresh simplex around the found optimum.
        let polished = nelder_mead(
            objective,
            &first.x,
            NelderMeadOptions {
                max_evals: config.host_evals / 2,
                f_tolerance: 1e-10,
                initial_step: spread * 0.03,
            },
        );
        Ok(if polished.fx < first.fx {
            polished.x
        } else {
            first.x
        })
    }

    /// Landmark coordinate matrix (`m x d`).
    pub fn landmarks(&self) -> &Matrix {
        &self.landmarks
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Distance between two coordinate vectors.
    pub fn distance(a: &[f64], b: &[f64]) -> f64 {
        euclid(a, b)
    }

    /// The Euclidean model over the landmarks themselves.
    pub fn landmark_model(&self) -> EuclideanModel {
        EuclideanModel::new(self.landmarks.clone())
    }
}

impl crate::model::BatchEmbed for GnpModel {
    /// Stochastic embedder: `ids[h]` seeds host `h`'s simplex restart, using
    /// the configuration stored at landmark-fit time.
    fn embed_batch(&self, rows: &Matrix, ids: &[u64]) -> Result<Matrix> {
        self.fit_hosts(rows, self.config, ids)
    }
}

impl DistanceEstimator for GnpModel {
    fn estimate(&self, i: usize, j: usize) -> f64 {
        euclid(self.landmarks.row(i), self.landmarks.row(j))
    }
    fn n_from(&self) -> usize {
        self.landmarks.rows()
    }
    fn n_to(&self) -> usize {
        self.landmarks.rows()
    }
}

fn euclid(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn euclidean_dataset(n: usize) -> (DistanceMatrix, Vec<(f64, f64)>) {
        let coords: Vec<(f64, f64)> = (0..n)
            .map(|i| {
                (
                    ((i * 13) % 7) as f64 * 12.0,
                    ((i * 5) % 9) as f64 * 8.0 + 1.0,
                )
            })
            .collect();
        let values = Matrix::from_fn(n, n, |i, j| {
            let (xi, yi) = coords[i];
            let (xj, yj) = coords[j];
            ((xi - xj).powi(2) + (yi - yj).powi(2)).sqrt()
        });
        (DistanceMatrix::full("euclid", values).unwrap(), coords)
    }

    #[test]
    fn fits_euclidean_landmarks_well() {
        let (data, _) = euclidean_dataset(8);
        let model = GnpModel::fit_landmarks(&data, GnpConfig::new(2)).unwrap();
        let mut total_rel = 0.0;
        let mut pairs = 0;
        for i in 0..8 {
            for j in (i + 1)..8 {
                let actual = data.get(i, j).unwrap();
                let est = model.estimate(i, j);
                total_rel += (actual - est).abs() / actual;
                pairs += 1;
            }
        }
        let mean_rel = total_rel / pairs as f64;
        assert!(mean_rel < 0.15, "mean relative error {mean_rel}");
    }

    #[test]
    fn host_fit_places_known_point() {
        let (data, _) = euclidean_dataset(8);
        let model = GnpModel::fit_landmarks(&data, GnpConfig::new(2)).unwrap();
        // A "new" host coincident with landmark 3: distances are row 3.
        let row: Vec<f64> = (0..8).map(|j| data.get(3, j).unwrap()).collect();
        let coords = model.fit_host(&row, GnpConfig::new(2), 3).unwrap();
        // The host fit should land near landmark 3's own embedded position:
        // its distance estimates to the other landmarks must roughly match
        // the model's own estimates from landmark 3.
        let mut total_rel = 0.0;
        let mut count = 0;
        for l in 0..8 {
            if l == 3 {
                continue;
            }
            let host_est = euclid(&coords, model.landmarks().row(l));
            let own_est = model.estimate(3, l);
            if own_est > 1e-9 {
                total_rel += (host_est - own_est).abs() / own_est;
                count += 1;
            }
        }
        let mean_rel = total_rel / count as f64;
        assert!(
            mean_rel < 0.2,
            "host fit deviates from landmark-3 embedding by {mean_rel}"
        );
    }

    #[test]
    fn host_fit_validates_input_length() {
        let (data, _) = euclidean_dataset(5);
        let model = GnpModel::fit_landmarks(&data, GnpConfig::new(2)).unwrap();
        assert!(model.fit_host(&[1.0, 2.0], GnpConfig::new(2), 0).is_err());
    }

    #[test]
    fn fit_hosts_matches_per_host_fits_bitwise() {
        let (data, _) = euclidean_dataset(6);
        let cfg = GnpConfig {
            landmark_evals: 6_000,
            host_evals: 800,
            ..GnpConfig::new(2)
        };
        let model = GnpModel::fit_landmarks(&data, cfg).unwrap();
        let rows = Matrix::from_fn(3, 6, |h, j| data.get(h + 1, j).unwrap().max(0.1));
        let seeds = [11u64, 7, 42];
        let batch = model.fit_hosts(&rows, cfg, &seeds).unwrap();
        for h in 0..3 {
            let single = model.fit_host(rows.row(h), cfg, seeds[h]).unwrap();
            for j in 0..2 {
                assert_eq!(batch[(h, j)].to_bits(), single[j].to_bits());
            }
        }
        // Seed-count mismatch rejected.
        assert!(model.fit_hosts(&rows, cfg, &seeds[..2]).is_err());
        // The stored config round-trips.
        assert_eq!(model.config().host_evals, 800);
    }

    #[test]
    fn rejects_incomplete_or_rectangular() {
        let rect = DistanceMatrix::full("r", Matrix::zeros(2, 3)).unwrap();
        assert!(GnpModel::fit_landmarks(&rect, GnpConfig::new(2)).is_err());
        let values = Matrix::zeros(3, 3);
        let mut mask = Matrix::filled(3, 3, 1.0);
        mask[(0, 1)] = 0.0;
        let incomplete = DistanceMatrix::with_mask("i", values, mask).unwrap();
        assert!(GnpModel::fit_landmarks(&incomplete, GnpConfig::new(2)).is_err());
    }

    #[test]
    fn embedding_cannot_capture_asymmetry() {
        // Structural check: whatever GNP produces is symmetric, unlike the
        // factor model — this is §2.2's limitation.
        let ds = ides_datasets::generators::gnp_like(10, 5).unwrap();
        let model = GnpModel::fit_landmarks(
            &ds.matrix,
            GnpConfig {
                landmark_evals: 5_000,
                ..GnpConfig::new(3)
            },
        )
        .unwrap();
        for i in 0..10 {
            for j in 0..10 {
                assert_eq!(model.estimate(i, j), model.estimate(j, i));
            }
        }
    }
}
