//! Distance-model abstractions: the factorization model (`D̂ᵢⱼ = X_i · Y_j`)
//! and the Euclidean embedding model used by the baselines.

use serde::{Deserialize, Serialize};

use ides_linalg::Matrix;

use crate::error::{MfError, Result};

/// Anything that can estimate the distance from row-host `i` to
/// column-host `j`.
pub trait DistanceEstimator {
    /// Estimated distance from host `i` to host `j`.
    fn estimate(&self, i: usize, j: usize) -> f64;
    /// Number of "from" hosts the model covers.
    fn n_from(&self) -> usize;
    /// Number of "to" hosts the model covers.
    fn n_to(&self) -> usize;

    /// Materializes the full estimated matrix.
    fn estimate_matrix(&self) -> Matrix {
        Matrix::from_fn(self.n_from(), self.n_to(), |i, j| self.estimate(i, j))
    }
}

/// Models that can embed a whole **batch** of new hosts from their
/// measurement rows in one call — the estimator-level entry point the
/// sharded evaluation driver (`ides::eval`) uses so every system (IDES
/// joins, ICS PCA projection, GNP simplex fits) runs behind the same
/// gather → batch-embed → score pipeline.
///
/// `rows` holds one host per row (distances to the reference/landmark
/// set); the result has one coordinate row per host. `ids` are per-host
/// identifiers, parallel to the rows, that stochastic embedders (GNP) use
/// for deterministic seeding; deterministic embedders ignore them.
///
/// Implementations must be **per-row independent**: host `h`'s output row
/// may depend only on its input row (and the fitted model), never on the
/// rest of the batch, so that sharded and whole-batch embeddings are
/// bit-identical.
pub trait BatchEmbed {
    /// Embeds each measurement row into one coordinate row.
    fn embed_batch(&self, rows: &Matrix, ids: &[u64]) -> Result<Matrix>;
}

/// The paper's model (§3): each host carries an *outgoing* vector `X_i`
/// and an *incoming* vector `Y_j`; the estimated distance from `i` to `j`
/// is their dot product. Distances may be asymmetric
/// (`X_i·Y_j ≠ X_j·Y_i`) and need not satisfy the triangle inequality.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FactorModel {
    /// Outgoing vectors as rows, `N x d`.
    x: Matrix,
    /// Incoming vectors as rows, `N' x d`.
    y: Matrix,
}

impl FactorModel {
    /// Builds a model from outgoing (`N x d`) and incoming (`N' x d`)
    /// vector matrices. The column counts must agree.
    pub fn new(x: Matrix, y: Matrix) -> Result<Self> {
        if x.cols() != y.cols() {
            return Err(MfError::DimensionMismatch {
                x: x.shape(),
                y: y.shape(),
            });
        }
        Ok(FactorModel { x, y })
    }

    /// Model dimensionality `d`.
    pub fn dim(&self) -> usize {
        self.x.cols()
    }

    /// The outgoing-vector matrix `X` (`N x d`).
    pub fn x(&self) -> &Matrix {
        &self.x
    }

    /// The incoming-vector matrix `Y` (`N' x d`).
    pub fn y(&self) -> &Matrix {
        &self.y
    }

    /// Outgoing vector of host `i`.
    pub fn outgoing(&self, i: usize) -> &[f64] {
        self.x.row(i)
    }

    /// Incoming vector of host `j`.
    pub fn incoming(&self, j: usize) -> &[f64] {
        self.y.row(j)
    }

    /// Overwrites host `i`'s outgoing vector — the streaming layer's
    /// surgical row update after absorbing a drifted landmark measurement.
    pub fn set_outgoing(&mut self, i: usize, v: &[f64]) {
        self.x.row_mut(i).copy_from_slice(v);
    }

    /// Overwrites host `j`'s incoming vector; see
    /// [`FactorModel::set_outgoing`].
    pub fn set_incoming(&mut self, j: usize, v: &[f64]) {
        self.y.row_mut(j).copy_from_slice(v);
    }

    /// Reconstructed matrix `X Yᵀ`.
    pub fn reconstruct(&self) -> Matrix {
        self.x
            .matmul_tr(&self.y)
            .expect("column counts checked at construction")
    }

    /// Estimates the distance between two *external* vector pairs (used by
    /// IDES for ordinary hosts that are not rows of the model).
    pub fn dot(out_vec: &[f64], in_vec: &[f64]) -> f64 {
        out_vec
            .iter()
            .zip(in_vec.iter())
            .map(|(&a, &b)| a * b)
            .sum()
    }
}

impl DistanceEstimator for FactorModel {
    fn estimate(&self, i: usize, j: usize) -> f64 {
        FactorModel::dot(self.x.row(i), self.y.row(j))
    }
    fn n_from(&self) -> usize {
        self.x.rows()
    }
    fn n_to(&self) -> usize {
        self.y.rows()
    }
}

/// A Euclidean network embedding (§2): one coordinate vector per host,
/// distances estimated by the Euclidean norm. Inherently symmetric and
/// triangle-inequality bound — the limitation the paper's model removes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EuclideanModel {
    coords: Matrix,
}

impl EuclideanModel {
    /// Builds a model from host coordinates (`N x d`).
    pub fn new(coords: Matrix) -> Self {
        EuclideanModel { coords }
    }

    /// Model dimensionality.
    pub fn dim(&self) -> usize {
        self.coords.cols()
    }

    /// Host coordinate rows.
    pub fn coords(&self) -> &Matrix {
        &self.coords
    }

    /// Coordinates of host `i`.
    pub fn coord(&self, i: usize) -> &[f64] {
        self.coords.row(i)
    }

    /// Euclidean distance between two coordinate vectors.
    pub fn distance(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b.iter())
            .map(|(&x, &y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt()
    }
}

impl DistanceEstimator for EuclideanModel {
    fn estimate(&self, i: usize, j: usize) -> f64 {
        EuclideanModel::distance(self.coords.row(i), self.coords.row(j))
    }
    fn n_from(&self) -> usize {
        self.coords.rows()
    }
    fn n_to(&self) -> usize {
        self.coords.rows()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor_model_dot_product() {
        let x = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let y = Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]).unwrap();
        let m = FactorModel::new(x, y).unwrap();
        assert_eq!(m.estimate(0, 0), 17.0); // 1*5 + 2*6
        assert_eq!(m.estimate(0, 1), 23.0);
        assert_eq!(m.dim(), 2);
        assert_eq!(m.n_from(), 2);
        assert_eq!(m.n_to(), 2);
    }

    #[test]
    fn factor_model_can_be_asymmetric() {
        let x = Matrix::from_vec(2, 1, vec![1.0, 2.0]).unwrap();
        let y = Matrix::from_vec(2, 1, vec![3.0, 5.0]).unwrap();
        let m = FactorModel::new(x, y).unwrap();
        assert_ne!(m.estimate(0, 1), m.estimate(1, 0)); // 5 vs 6
    }

    #[test]
    fn factor_model_rejects_mismatched_dims() {
        let x = Matrix::zeros(2, 2);
        let y = Matrix::zeros(2, 3);
        assert!(FactorModel::new(x, y).is_err());
    }

    #[test]
    fn reconstruct_matches_estimates() {
        let x = Matrix::from_fn(3, 2, |i, j| (i + j) as f64);
        let y = Matrix::from_fn(4, 2, |i, j| (2 * i + j) as f64 * 0.5);
        let m = FactorModel::new(x, y).unwrap();
        let r = m.reconstruct();
        assert_eq!(r.shape(), (3, 4));
        for i in 0..3 {
            for j in 0..4 {
                assert!((r[(i, j)] - m.estimate(i, j)).abs() < 1e-14);
            }
        }
        assert_eq!(r, m.estimate_matrix());
    }

    #[test]
    fn euclidean_model_symmetric_and_triangle() {
        let coords = Matrix::from_vec(3, 2, vec![0.0, 0.0, 3.0, 4.0, 6.0, 8.0]).unwrap();
        let m = EuclideanModel::new(coords);
        assert_eq!(m.estimate(0, 1), 5.0);
        assert_eq!(m.estimate(1, 0), 5.0);
        assert_eq!(m.estimate(0, 0), 0.0);
        // Triangle inequality is inherent.
        assert!(m.estimate(0, 2) <= m.estimate(0, 1) + m.estimate(1, 2) + 1e-12);
        assert_eq!(m.dim(), 2);
    }

    #[test]
    fn outgoing_incoming_accessors() {
        let x = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]).unwrap();
        let y = Matrix::from_vec(1, 3, vec![4.0, 5.0, 6.0]).unwrap();
        let m = FactorModel::new(x, y).unwrap();
        assert_eq!(m.outgoing(0), &[1.0, 2.0, 3.0]);
        assert_eq!(m.incoming(0), &[4.0, 5.0, 6.0]);
        assert_eq!(FactorModel::dot(m.outgoing(0), m.incoming(0)), 32.0);
    }
}
