//! Accuracy metrics: the paper's modified relative error (Eq. 10) and
//! CDF/percentile helpers used throughout the evaluation.

use ides_datasets::DistanceMatrix;

use crate::model::DistanceEstimator;

/// Floor applied to the denominator of the relative error so that a
/// (pathological) near-zero prediction yields a large-but-finite penalty.
pub const DENOM_FLOOR: f64 = 1e-6;

/// The paper's modified relative error (Eq. 10):
/// `|D − D̂| / min(D, D̂)`, where the min in the denominator increases the
/// penalty for *underestimated* distances.
///
/// Non-positive predictions are clamped to [`DENOM_FLOOR`] before taking
/// the min, so the result is always finite for finite inputs.
pub fn modified_relative_error(actual: f64, predicted: f64) -> f64 {
    let p = predicted.max(DENOM_FLOOR);
    let denom = actual.min(p).max(DENOM_FLOOR);
    (actual - p).abs() / denom
}

/// Relative errors of a model over all observed off-diagonal entries of a
/// distance matrix.
pub fn reconstruction_errors(model: &dyn DistanceEstimator, data: &DistanceMatrix) -> Vec<f64> {
    let mut errs = Vec::new();
    for (i, j, actual) in data.observed_entries() {
        if i == j && data.is_square() {
            continue;
        }
        errs.push(modified_relative_error(actual, model.estimate(i, j)));
    }
    errs
}

/// An empirical CDF over a sample of (error) values.
#[derive(Debug, Clone)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from samples (NaNs are rejected by debug assertion).
    ///
    /// Consumes the sample vector: callers that are done with their error
    /// list (e.g. `PredictionResult::into_cdf` in `ides::eval`) hand it
    /// over without a copy.
    pub fn new(mut samples: Vec<f64>) -> Self {
        debug_assert!(samples.iter().all(|v| !v.is_nan()), "NaN sample in CDF");
        samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
        Cdf { sorted: samples }
    }

    /// Builds a CDF from a borrowed sample slice — one copy, for callers
    /// that still need the samples afterwards.
    pub fn from_slice(samples: &[f64]) -> Self {
        Cdf::new(samples.to_vec())
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when the CDF holds no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The `p`-quantile (0 ≤ p ≤ 1), linear interpolation between order
    /// statistics. Returns NaN for an empty sample.
    pub fn quantile(&self, p: f64) -> f64 {
        if self.sorted.is_empty() {
            return f64::NAN;
        }
        let p = p.clamp(0.0, 1.0);
        let pos = p * (self.sorted.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        if lo == hi {
            self.sorted[lo]
        } else {
            let frac = pos - lo as f64;
            self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac
        }
    }

    /// Median (0.5-quantile).
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// 90th percentile, reported throughout the paper's evaluation.
    pub fn p90(&self) -> f64 {
        self.quantile(0.9)
    }

    /// Fraction of samples ≤ `x`.
    pub fn fraction_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return f64::NAN;
        }
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Evenly spaced `(value, cumulative_probability)` points for plotting.
    pub fn curve(&self, points: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || points == 0 {
            return Vec::new();
        }
        (0..points)
            .map(|k| {
                let p = k as f64 / (points - 1).max(1) as f64;
                (self.quantile(p), p)
            })
            .collect()
    }

    /// Mean of the samples.
    pub fn mean(&self) -> f64 {
        if self.sorted.is_empty() {
            return f64::NAN;
        }
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::FactorModel;
    use ides_linalg::Matrix;

    #[test]
    fn relative_error_exact_prediction() {
        assert_eq!(modified_relative_error(10.0, 10.0), 0.0);
    }

    #[test]
    fn underestimation_penalized_more() {
        // Overestimate by 2x: |10-20|/min(10,20) = 1.
        let over = modified_relative_error(10.0, 20.0);
        // Underestimate by 2x: |10-5|/min(10,5) = 1.
        let under = modified_relative_error(10.0, 5.0);
        assert!((over - 1.0).abs() < 1e-12);
        assert!((under - 1.0).abs() < 1e-12);
        // Deeper underestimation blows up faster than overestimation of the
        // same absolute size: |10-1|/1 = 9 vs |10-19|/10 = 0.9.
        assert!(modified_relative_error(10.0, 1.0) > modified_relative_error(10.0, 19.0) * 5.0);
    }

    #[test]
    fn negative_prediction_is_finite_large() {
        let e = modified_relative_error(10.0, -5.0);
        assert!(e.is_finite());
        assert!(e > 100.0);
    }

    #[test]
    fn cdf_quantiles() {
        let cdf = Cdf::new(vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(cdf.median(), 3.0);
        assert_eq!(cdf.quantile(0.0), 1.0);
        assert_eq!(cdf.quantile(1.0), 5.0);
        assert_eq!(cdf.quantile(0.25), 2.0);
        assert!((cdf.p90() - 4.6).abs() < 1e-12);
        assert_eq!(cdf.len(), 5);
    }

    #[test]
    fn cdf_fraction_below() {
        let cdf = Cdf::new(vec![0.1, 0.2, 0.3, 0.4]);
        assert_eq!(cdf.fraction_below(0.25), 0.5);
        assert_eq!(cdf.fraction_below(1.0), 1.0);
        assert_eq!(cdf.fraction_below(0.0), 0.0);
    }

    #[test]
    fn cdf_curve_monotone() {
        let cdf = Cdf::new((0..100).map(|i| ((i * 37) % 100) as f64 / 10.0).collect());
        let curve = cdf.curve(20);
        assert_eq!(curve.len(), 20);
        for w in curve.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn cdf_empty_behaviour() {
        let cdf = Cdf::new(vec![]);
        assert!(cdf.is_empty());
        assert!(cdf.median().is_nan());
        assert!(cdf.fraction_below(1.0).is_nan());
        assert!(cdf.curve(5).is_empty());
    }

    #[test]
    fn reconstruction_errors_skip_diagonal_and_missing() {
        let values = Matrix::from_vec(2, 2, vec![0.0, 10.0, 0.0, 0.0]).unwrap();
        let mut mask = Matrix::filled(2, 2, 1.0);
        mask[(1, 0)] = 0.0;
        let data = ides_datasets::DistanceMatrix::with_mask("t", values, mask).unwrap();
        // Perfect model: X = [[1],[0]], Y = [[0],[10]] => est(0,1) = 10.
        let model = FactorModel::new(
            Matrix::from_vec(2, 1, vec![1.0, 0.0]).unwrap(),
            Matrix::from_vec(2, 1, vec![0.0, 10.0]).unwrap(),
        )
        .unwrap();
        let errs = reconstruction_errors(&model, &data);
        // Only (0,1) participates: diagonal skipped, (1,0) missing.
        assert_eq!(errs.len(), 1);
        assert!(errs[0] < 1e-12);
    }

    #[test]
    fn mean_of_cdf() {
        let cdf = Cdf::new(vec![1.0, 3.0]);
        assert_eq!(cdf.mean(), 2.0);
    }
}
