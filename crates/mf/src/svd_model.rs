//! SVD-based distance matrix factorization (§4.1 of the paper).
//!
//! `D = U S Vᵀ`; truncating to the top `d` singular triples and splitting
//! `S` symmetrically gives `X = U_d S_d^{1/2}`, `Y = V_d S_d^{1/2}`, the
//! global minimizer of the squared reconstruction error (Eq. 7).

use ides_datasets::DistanceMatrix;
use ides_linalg::svd::{svd, svd_truncated, Svd, TruncatedSvdOptions};
use ides_linalg::Matrix;

use crate::error::{MfError, Result};
use crate::model::FactorModel;

/// Configuration for the SVD factorizer.
#[derive(Debug, Clone, Copy)]
pub struct SvdConfig {
    /// Target dimensionality `d`.
    pub dim: usize,
    /// Force the exact (full-decomposition) SVD even for large matrices —
    /// blocked Golub–Kahan above the factorization layer's small-matrix
    /// cutoff, one-sided Jacobi below it. By default the truncated
    /// subspace iteration is used when it is clearly cheaper; both paths
    /// run on `ides_linalg`'s blocked factorization layer.
    pub force_exact: bool,
}

impl SvdConfig {
    /// Config with dimension `d` and automatic algorithm choice.
    pub fn new(dim: usize) -> Self {
        SvdConfig {
            dim,
            force_exact: false,
        }
    }
}

/// Factors a distance matrix by SVD into a rank-`d` [`FactorModel`].
///
/// The input must be fully observed (the paper notes SVD cannot cope with
/// missing entries without dropping hosts; use NMF for incomplete data or
/// filter first).
pub fn fit(data: &DistanceMatrix, config: SvdConfig) -> Result<FactorModel> {
    if !data.is_complete() {
        return Err(MfError::InvalidInput(
            "SVD requires a fully observed matrix; filter missing hosts or use NMF".into(),
        ));
    }
    fit_matrix(data.values(), config)
}

/// Factors a raw matrix (no observation mask) by SVD.
pub fn fit_matrix(d: &Matrix, config: SvdConfig) -> Result<FactorModel> {
    let (m, n) = d.shape();
    if m == 0 || n == 0 {
        return Err(MfError::InvalidInput("empty matrix".into()));
    }
    let dim = config.dim.min(m).min(n);
    if dim == 0 {
        return Err(MfError::InvalidInput("dimension must be at least 1".into()));
    }
    let decomposition = if config.force_exact {
        svd(d)?.truncate(dim)
    } else {
        svd_truncated(d, dim, TruncatedSvdOptions::default())?
    };
    Ok(model_from_svd(&decomposition, dim))
}

/// Builds the factor model from a (possibly wider) decomposition:
/// `X_ij = U_ij sqrt(S_j)`, `Y_ij = V_ij sqrt(S_j)` (Eqs. 5–6).
pub fn model_from_svd(decomposition: &Svd, dim: usize) -> FactorModel {
    let k = dim.min(decomposition.singular_values.len());
    let mut x = Matrix::zeros(decomposition.u.rows(), k);
    let mut y = Matrix::zeros(decomposition.v.rows(), k);
    for j in 0..k {
        let root = decomposition.singular_values[j].max(0.0).sqrt();
        for i in 0..x.rows() {
            x[(i, j)] = decomposition.u[(i, j)] * root;
        }
        for i in 0..y.rows() {
            y[(i, j)] = decomposition.v[(i, j)] * root;
        }
    }
    FactorModel::new(x, y).expect("columns agree by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{reconstruction_errors, Cdf};
    use crate::model::DistanceEstimator;
    use ides_netsim::topology::figure1_distance_matrix;

    #[test]
    fn paper_example_exact_rank3() {
        // §4.1: the Figure-1 matrix has S = diag(4,2,2,0), so d=3 is exact.
        let d = figure1_distance_matrix();
        let model = fit_matrix(
            &d,
            SvdConfig {
                dim: 3,
                force_exact: true,
            },
        )
        .unwrap();
        assert!(model.reconstruct().approx_eq(&d, 1e-9));
        // And the reconstruction is NOT possible in d=2 (error > 0).
        let m2 = fit_matrix(
            &d,
            SvdConfig {
                dim: 2,
                force_exact: true,
            },
        )
        .unwrap();
        assert!(!m2.reconstruct().approx_eq(&d, 1e-6));
    }

    #[test]
    fn factorization_minimizes_squared_error() {
        // Eckart–Young: rank-d SVD factorization achieves the optimal
        // Frobenius error sqrt(Σ_{i>d} σᵢ²).
        let d = Matrix::from_fn(10, 10, |i, j| {
            if i == j {
                0.0
            } else {
                20.0 + ((i * 3 + j * 7) % 13) as f64
            }
        });
        let full = svd(&d).unwrap();
        for dim in [1, 3, 5] {
            let model = fit_matrix(
                &d,
                SvdConfig {
                    dim,
                    force_exact: true,
                },
            )
            .unwrap();
            let err = (&d - &model.reconstruct()).frobenius_norm();
            let optimal: f64 = full.singular_values[dim..]
                .iter()
                .map(|s| s * s)
                .sum::<f64>()
                .sqrt();
            assert!(
                (err - optimal).abs() < 1e-8 * (1.0 + optimal),
                "dim {dim}: {err} vs {optimal}"
            );
        }
    }

    #[test]
    fn asymmetric_matrix_reconstructed() {
        // Euclidean embeddings cannot represent asymmetry; SVD factorization can.
        let d = Matrix::from_vec(3, 3, vec![0.0, 10.0, 3.0, 2.0, 0.0, 9.0, 8.0, 1.0, 0.0]).unwrap();
        let model = fit_matrix(
            &d,
            SvdConfig {
                dim: 3,
                force_exact: true,
            },
        )
        .unwrap();
        assert!(model.reconstruct().approx_eq(&d, 1e-8));
        assert!((model.estimate(0, 1) - 10.0).abs() < 1e-8);
        assert!((model.estimate(1, 0) - 2.0).abs() < 1e-8);
    }

    #[test]
    fn rejects_incomplete_data() {
        let values = Matrix::zeros(3, 3);
        let mut mask = Matrix::filled(3, 3, 1.0);
        mask[(0, 1)] = 0.0;
        let data = DistanceMatrix::with_mask("m", values, mask).unwrap();
        assert!(fit(&data, SvdConfig::new(2)).is_err());
    }

    #[test]
    fn dim_clamped_to_matrix_size() {
        let d = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64 + 1.0);
        let model = fit_matrix(&d, SvdConfig::new(100)).unwrap();
        assert_eq!(model.dim(), 4);
    }

    #[test]
    fn truncated_matches_exact_on_moderate_matrix() {
        let d = Matrix::from_fn(30, 30, |i, j| {
            if i == j {
                0.0
            } else {
                15.0 + ((i / 5) as f64 - (j / 5) as f64).abs() * 12.0
            }
        });
        let exact = fit_matrix(
            &d,
            SvdConfig {
                dim: 5,
                force_exact: true,
            },
        )
        .unwrap();
        let fast = fit_matrix(
            &d,
            SvdConfig {
                dim: 5,
                force_exact: false,
            },
        )
        .unwrap();
        let e1 = (&d - &exact.reconstruct()).frobenius_norm();
        let e2 = (&d - &fast.reconstruct()).frobenius_norm();
        assert!((e1 - e2).abs() < 1e-6 * (1.0 + e1), "{e1} vs {e2}");
    }

    #[test]
    fn reconstruction_errors_on_real_dataset_shape() {
        let ds = ides_datasets::generators::gnp_like(19, 3).unwrap();
        let model = fit(&ds.matrix, SvdConfig::new(10)).unwrap();
        let errs = reconstruction_errors(&model, &ds.matrix);
        assert_eq!(errs.len(), 19 * 18);
        let cdf = Cdf::new(errs);
        // With d=10 of 19, reconstruction should be very accurate (paper
        // reports 90% within 9% relative error for GNP at d=10).
        assert!(cdf.p90() < 0.25, "90th percentile error {}", cdf.p90());
    }
}
