//! Alternating least squares factorization (extension).
//!
//! The paper's two learners each have a gap: SVD is the global optimum of
//! Eq. 7 but cannot handle missing entries; NMF handles missing entries
//! but is constrained nonnegative and converges to local minima by slow
//! multiplicative updates. ALS fills the gap discussed in the paper's
//! §4.2: minimize the same squared error, unconstrained, by alternating
//! exact least-squares solves —
//!
//! ```text
//! X_i ← argmin_u Σ_{j observed} (D_ij − u · Y_j)²    (row-wise LS)
//! Y_j ← argmin_u Σ_{i observed} (D_ij − X_i · u)²
//! ```
//!
//! Each half-step is the same computation as an IDES host join (Eqs.
//! 13–14), so ALS is also the natural "re-fit everything" operation for a
//! long-running IDES deployment.

use rand::rngs::StdRng;
use rand::SeedableRng;

use ides_datasets::DistanceMatrix;
use ides_linalg::{random, solve, Matrix};

use crate::error::{MfError, Result};
use crate::model::FactorModel;

/// Per-entry weighting of the squared error.
///
/// `Uniform` minimizes Eq. 7 of the paper (plain squared error).
/// `InverseSquare` weights each cell by `1/D_ij²`, so the objective
/// becomes the sum of squared *relative* errors — the kind of objective
/// GNP's Eq. 3 optimizes by Simplex Downhill, here solved by alternating
/// closed-form least squares instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightScheme {
    /// All observed entries weighted equally (the paper's Eq. 7).
    Uniform,
    /// Weight `1/max(D, ε)` — compromise between absolute and relative.
    InverseDistance,
    /// Weight `1/max(D, ε)²` — squared relative error.
    InverseSquare,
}

impl WeightScheme {
    /// The square root of the weight for a cell with value `d` (rows of
    /// the LS systems are scaled by this).
    fn sqrt_weight(self, d: f64) -> f64 {
        const FLOOR: f64 = 1e-3;
        match self {
            WeightScheme::Uniform => 1.0,
            WeightScheme::InverseDistance => 1.0 / d.max(FLOOR).sqrt(),
            WeightScheme::InverseSquare => 1.0 / d.max(FLOOR),
        }
    }
}

/// Configuration for the ALS factorizer.
#[derive(Debug, Clone, Copy)]
pub struct AlsConfig {
    /// Target dimensionality `d`.
    pub dim: usize,
    /// Full X-then-Y sweeps.
    pub sweeps: usize,
    /// Ridge term keeping row solves well-posed when a host has fewer than
    /// `d` observed entries.
    pub ridge: f64,
    /// RNG seed for the initialization.
    pub seed: u64,
    /// Stop early when the relative error improvement per sweep falls
    /// below this (0 disables).
    pub tolerance: f64,
    /// Per-entry error weighting.
    pub weights: WeightScheme,
}

impl AlsConfig {
    /// Sensible defaults: 30 sweeps, tiny ridge, uniform weights.
    pub fn new(dim: usize) -> Self {
        AlsConfig {
            dim,
            sweeps: 30,
            ridge: 1e-8,
            seed: 4242,
            tolerance: 1e-8,
            weights: WeightScheme::Uniform,
        }
    }

    /// Relative-error objective (weights `1/D²`).
    pub fn relative(dim: usize) -> Self {
        AlsConfig {
            weights: WeightScheme::InverseSquare,
            ..AlsConfig::new(dim)
        }
    }
}

/// Result of an ALS fit.
#[derive(Debug, Clone)]
pub struct AlsFit {
    /// The fitted factor model.
    pub model: FactorModel,
    /// Squared observed-entry error after each sweep.
    pub error_trace: Vec<f64>,
}

/// Factors a (possibly incomplete) distance matrix by ALS.
pub fn fit(data: &DistanceMatrix, config: AlsConfig) -> Result<AlsFit> {
    let (m, n) = data.shape();
    if m == 0 || n == 0 {
        return Err(MfError::InvalidInput("empty matrix".into()));
    }
    if config.dim == 0 {
        return Err(MfError::InvalidInput("dimension must be at least 1".into()));
    }
    let k = config.dim.min(m).min(n);
    let d = data.values();

    // Scale-aware random init (sign-free: ALS is unconstrained).
    let mut rng = StdRng::seed_from_u64(config.seed);
    let scale = (d.mean().abs().max(1e-12) / k as f64).sqrt();
    let x = random::uniform(m, k, 0.1 * scale, scale, &mut rng);
    let y = random::uniform(n, k, 0.1 * scale, scale, &mut rng);
    run_sweeps(data, x, y, config)
}

/// Warm-start **partial refit**: continues ALS from an existing factor
/// model instead of a fresh random initialization, running at most
/// `config.sweeps` full X-then-Y sweeps.
///
/// This is the streaming-update workhorse: when a slab of the landmark
/// matrix drifts, a small sweep budget (1–3) from the current factors
/// re-converges at a fraction of a cold fit's cost, because each half-step
/// is an exact least-squares solve and the start point is already near the
/// optimum. Entirely deterministic — no RNG is consulted — so a refit from
/// the same `(data, model, config)` is bit-reproducible, which is what
/// lets `ides`' `apply_epoch` promise joins bit-identical to a manual
/// refit with the same budget. `config.dim` and `config.seed` are ignored
/// in favor of the model's own dimensionality. Reuses the same
/// allocation-free inner loops (workspace buffers, banded error pass) as
/// [`fit`].
pub fn refine(data: &DistanceMatrix, model: &FactorModel, config: AlsConfig) -> Result<AlsFit> {
    let (m, n) = data.shape();
    if m == 0 || n == 0 {
        return Err(MfError::InvalidInput("empty matrix".into()));
    }
    if model.x().rows() != m || model.y().rows() != n {
        return Err(MfError::DimensionMismatch {
            x: model.x().shape(),
            y: model.y().shape(),
        });
    }
    run_sweeps(data, model.x().clone(), model.y().clone(), config)
}

/// The shared ALS sweep loop: alternates exact row solves from the given
/// starting factors until the sweep budget or tolerance is exhausted.
fn run_sweeps(
    data: &DistanceMatrix,
    mut x: Matrix,
    mut y: Matrix,
    config: AlsConfig,
) -> Result<AlsFit> {
    let (m, n) = data.shape();
    let k = x.cols();
    let d = data.values();
    let mask = data.mask();

    // Precompute observed index lists per row and per column.
    let rows_obs: Vec<Vec<usize>> = (0..m)
        .map(|i| (0..n).filter(|&j| mask[(i, j)] == 1.0).collect())
        .collect();
    let cols_obs: Vec<Vec<usize>> = (0..n)
        .map(|j| (0..m).filter(|&i| mask[(i, j)] == 1.0).collect())
        .collect();

    // Preallocated sweep workspace: the gathered LS system, its right-hand
    // side, the normal-equation scratch, and the solved row. Reused by
    // every row solve of every sweep, so the inner loops allocate nothing
    // once the buffers reach their high-water mark.
    let mut a_buf = Matrix::zeros(m.max(n), k);
    let mut b_buf: Vec<f64> = Vec::with_capacity(m.max(n));
    let mut row_buf = vec![0.0; k];
    let mut ne_ws = solve::NormalEqWorkspace::new(k);
    let mut recon_band = Matrix::zeros(crate::banded::ERROR_BAND_ROWS.min(m.max(1)), n);

    let mut error_trace = Vec::with_capacity(config.sweeps);
    let mut prev = f64::INFINITY;
    for _sweep in 0..config.sweeps {
        // X rows against fixed Y. Weighted LS: scale each observation row
        // and target by the square-root weight.
        for i in 0..m {
            let obs = &rows_obs[i];
            if obs.is_empty() {
                continue;
            }
            y.select_rows_into(obs, &mut a_buf);
            b_buf.clear();
            b_buf.extend(obs.iter().map(|&j| d[(i, j)]));
            apply_weights(&mut a_buf, &mut b_buf, config.weights);
            solve::lstsq_ridge_with(&a_buf, &b_buf, config.ridge, &mut ne_ws, &mut row_buf)?;
            x.set_row(i, &row_buf);
        }
        // Y rows against fixed X.
        for j in 0..n {
            let obs = &cols_obs[j];
            if obs.is_empty() {
                continue;
            }
            x.select_rows_into(obs, &mut a_buf);
            b_buf.clear();
            b_buf.extend(obs.iter().map(|&i| d[(i, j)]));
            apply_weights(&mut a_buf, &mut b_buf, config.weights);
            solve::lstsq_ridge_with(&a_buf, &b_buf, config.ridge, &mut ne_ws, &mut row_buf)?;
            y.set_row(j, &row_buf);
        }
        let err = crate::banded::banded_sq_error(d, Some(mask), &x, &y, &mut recon_band);
        error_trace.push(err);
        if config.tolerance > 0.0 && prev.is_finite() {
            let impr = (prev - err) / prev.max(1e-300);
            if impr >= 0.0 && impr < config.tolerance {
                break;
            }
        }
        prev = err;
    }

    Ok(AlsFit {
        model: FactorModel::new(x, y)?,
        error_trace,
    })
}

/// Scales LS rows/targets in place by the square-root weight of the target.
fn apply_weights(a: &mut Matrix, b: &mut [f64], scheme: WeightScheme) {
    if scheme == WeightScheme::Uniform {
        return;
    }
    for (r, target) in b.iter_mut().enumerate() {
        let w = scheme.sqrt_weight(*target);
        for c in 0..a.cols() {
            a[(r, c)] *= w;
        }
        *target *= w;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::DistanceEstimator;
    use crate::nmf::{self, NmfConfig};

    fn low_rank(n: usize) -> Matrix {
        let b = Matrix::from_fn(n, 3, |i, j| 1.0 + ((i * 3 + j) as f64 * 0.41).sin());
        let c = Matrix::from_fn(3, n, |i, j| 1.0 + ((i * 5 + j) as f64 * 0.23).cos());
        b.matmul(&c).unwrap()
    }

    #[test]
    fn recovers_exact_low_rank() {
        let d = DistanceMatrix::full("lr", low_rank(14)).unwrap();
        let fit = fit(&d, AlsConfig::new(3)).unwrap();
        let rel =
            (&fit.model.reconstruct() - d.values()).frobenius_norm() / d.values().frobenius_norm();
        assert!(rel < 1e-5, "relative error {rel}");
    }

    #[test]
    fn error_monotone_per_sweep() {
        let d = DistanceMatrix::full("lr", low_rank(12)).unwrap();
        let fit = fit(
            &d,
            AlsConfig {
                sweeps: 20,
                tolerance: 0.0,
                ..AlsConfig::new(2)
            },
        )
        .unwrap();
        for w in fit.error_trace.windows(2) {
            assert!(w[1] <= w[0] * (1.0 + 1e-9), "{} -> {}", w[0], w[1]);
        }
    }

    #[test]
    fn handles_missing_entries_and_imputes() {
        let base = low_rank(12);
        let mut corrupted = base.clone();
        corrupted[(2, 7)] = 0.0;
        let mut mask = Matrix::filled(12, 12, 1.0);
        mask[(2, 7)] = 0.0;
        let data = DistanceMatrix::with_mask("m", corrupted, mask).unwrap();
        let fit = fit(&data, AlsConfig::new(3)).unwrap();
        let predicted = fit.model.estimate(2, 7);
        assert!(
            (predicted - base[(2, 7)]).abs() < 0.05 * base[(2, 7)],
            "imputed {predicted} vs true {}",
            base[(2, 7)]
        );
    }

    #[test]
    fn converges_faster_than_nmf_in_sweeps() {
        // ALS's exact half-steps should need far fewer passes than NMF's
        // multiplicative updates to reach the same error on clean data.
        let d = DistanceMatrix::full("lr", low_rank(15)).unwrap();
        let als = fit(
            &d,
            AlsConfig {
                sweeps: 5,
                tolerance: 0.0,
                ..AlsConfig::new(3)
            },
        )
        .unwrap();
        let nmf = nmf::fit(
            &d,
            NmfConfig {
                iterations: 5,
                init: crate::nmf::NmfInit::Random,
                ..NmfConfig::new(3)
            },
        )
        .unwrap();
        let als_err = als.error_trace.last().unwrap();
        let nmf_err = nmf.error_trace.last().unwrap();
        assert!(
            als_err < nmf_err,
            "ALS {als_err} vs NMF {nmf_err} after 5 passes"
        );
    }

    #[test]
    fn asymmetric_matrices_supported() {
        let mut d = low_rank(10);
        // Make it asymmetric: the factorization must not care.
        d[(0, 5)] *= 3.0;
        let data = DistanceMatrix::full("asym", d.clone()).unwrap();
        let fit = fit(
            &data,
            AlsConfig {
                sweeps: 60,
                ..AlsConfig::new(4)
            },
        )
        .unwrap();
        let rel = (&fit.model.reconstruct() - &d).frobenius_norm() / d.frobenius_norm();
        assert!(rel < 0.01, "relative error {rel}");
    }

    #[test]
    fn relative_weighting_prioritizes_small_distances() {
        // A matrix with a wide dynamic range: relative weighting must trade
        // absolute accuracy on large entries for relative accuracy on small
        // ones, compared to the uniform fit at the same rank.
        let n = 16;
        let base = {
            let b = Matrix::from_fn(n, 2, |i, j| 1.0 + ((i + j) as f64 * 0.37).sin().abs());
            let c = Matrix::from_fn(2, n, |i, j| 1.0 + ((i * 3 + j) as f64 * 0.19).cos().abs());
            let mut m = b.matmul(&c).unwrap();
            // Inflate one block to create scale contrast and make rank-1
            // fits imperfect.
            for i in 0..n {
                for j in 0..n {
                    if i >= n / 2 && j >= n / 2 {
                        m[(i, j)] *= 50.0;
                    }
                }
            }
            m
        };
        let data = DistanceMatrix::full("range", base.clone()).unwrap();
        let uni = fit(
            &data,
            AlsConfig {
                sweeps: 40,
                ..AlsConfig::new(1)
            },
        )
        .unwrap();
        let rel = fit(
            &data,
            AlsConfig {
                sweeps: 40,
                ..AlsConfig::relative(1)
            },
        )
        .unwrap();
        let rel_err_small = |model: &FactorModel| -> f64 {
            let mut total = 0.0;
            let mut count = 0;
            for i in 0..n / 2 {
                for j in 0..n / 2 {
                    let actual = base[(i, j)];
                    total += (model.estimate(i, j) - actual).abs() / actual;
                    count += 1;
                }
            }
            total / count as f64
        };
        let uni_small = rel_err_small(&uni.model);
        let rel_small = rel_err_small(&rel.model);
        assert!(
            rel_small < uni_small,
            "relative weighting should fit small entries better: {rel_small} vs {uni_small}"
        );
    }

    #[test]
    fn refine_is_deterministic_and_improves_on_drifted_data() {
        let base = low_rank(14);
        let data = DistanceMatrix::full("base", base.clone()).unwrap();
        let cold = fit(&data, AlsConfig::new(3)).unwrap();
        // Drift every entry a few percent and refit warm with a tiny budget.
        let mut drifted = base.clone();
        for (i, j, v) in base.iter_entries() {
            drifted[(i, j)] = v * (1.0 + 0.05 * ((i * 14 + j) as f64 * 0.7).sin());
        }
        let ddata = DistanceMatrix::full("drift", drifted.clone()).unwrap();
        let budget = AlsConfig {
            sweeps: 2,
            tolerance: 0.0,
            ..AlsConfig::new(3)
        };
        let warm = refine(&ddata, &cold.model, budget).unwrap();
        assert_eq!(warm.error_trace.len(), 2);
        // The stale model's error on the drifted data, for comparison.
        let mut stale_err = 0.0;
        let recon = cold.model.reconstruct();
        for (i, j, v) in drifted.iter_entries() {
            stale_err += (v - recon[(i, j)]) * (v - recon[(i, j)]);
        }
        let warm_err = *warm.error_trace.last().unwrap();
        assert!(
            warm_err < 0.5 * stale_err,
            "2 warm sweeps should slash the stale error: {warm_err} vs {stale_err}"
        );
        // Bit-reproducible: same inputs, same budget, same bits.
        let again = refine(&ddata, &cold.model, budget).unwrap();
        assert_eq!(
            warm.model.x().as_slice().len(),
            again.model.x().as_slice().len()
        );
        for (a, b) in warm
            .model
            .x()
            .as_slice()
            .iter()
            .chain(warm.model.y().as_slice())
            .zip(
                again
                    .model
                    .x()
                    .as_slice()
                    .iter()
                    .chain(again.model.y().as_slice()),
            )
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn refine_rejects_mismatched_model() {
        let data = DistanceMatrix::full("lr", low_rank(10)).unwrap();
        let other = fit(
            &DistanceMatrix::full("s", low_rank(8)).unwrap(),
            AlsConfig::new(2),
        )
        .unwrap();
        assert!(refine(&data, &other.model, AlsConfig::new(2)).is_err());
    }

    #[test]
    fn weight_scheme_sqrt_weights() {
        assert_eq!(WeightScheme::Uniform.sqrt_weight(100.0), 1.0);
        assert!((WeightScheme::InverseDistance.sqrt_weight(4.0) - 0.5).abs() < 1e-12);
        assert!((WeightScheme::InverseSquare.sqrt_weight(4.0) - 0.25).abs() < 1e-12);
        // Floor prevents infinite weights at D = 0.
        assert!(WeightScheme::InverseSquare.sqrt_weight(0.0).is_finite());
    }

    #[test]
    fn early_stop_and_validation() {
        let d = DistanceMatrix::full("lr", low_rank(10)).unwrap();
        assert!(fit(&d, AlsConfig::new(0)).is_err());
        let short = fit(
            &d,
            AlsConfig {
                sweeps: 100,
                tolerance: 1e-3,
                ..AlsConfig::new(3)
            },
        )
        .unwrap();
        assert!(short.error_trace.len() < 100);
    }
}
