//! Non-negative matrix factorization (§4.2 of the paper).
//!
//! Lee–Seung multiplicative updates minimizing the squared error (Eq. 7)
//! under nonnegativity of `X` and `Y`:
//!
//! ```text
//! X_ia ← X_ia (D Y)_ia / (X Yᵀ Y)_ia
//! Y_ja ← Y_ja (Dᵀ X)_ja / (Y Xᵀ X)_ja
//! ```
//!
//! plus the paper's masked variants (Eqs. 8–9) that skip missing entries,
//! which is NMF's key practical advantage over SVD. The paper reports that
//! "two hundred iterations suffice to converge to a local minimum"; that is
//! the default budget here.

use rand::rngs::StdRng;
use rand::SeedableRng;

use ides_datasets::DistanceMatrix;
use ides_linalg::{random, Matrix};

use crate::error::{MfError, Result};
use crate::model::FactorModel;

/// Small constant keeping denominators strictly positive.
const EPS: f64 = 1e-12;

/// Initialization strategy for the factors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NmfInit {
    /// Uniform random positive entries (the paper's "initial (random)
    /// matrices").
    Random,
    /// Absolute values of the rank-`d` SVD factors — a standard NMF warm
    /// start that typically converges in far fewer multiplicative updates.
    Svd,
}

/// Configuration for the NMF factorizer.
#[derive(Debug, Clone, Copy)]
pub struct NmfConfig {
    /// Target dimensionality `d`.
    pub dim: usize,
    /// Multiplicative-update iterations (paper: 200).
    pub iterations: usize,
    /// RNG seed for the random initialization.
    pub seed: u64,
    /// Stop early when the relative error improvement per iteration drops
    /// below this threshold (0 disables early stopping).
    pub tolerance: f64,
    /// Factor initialization strategy.
    pub init: NmfInit,
}

impl NmfConfig {
    /// Paper defaults: 200 iterations, SVD warm start, fixed seed.
    pub fn new(dim: usize) -> Self {
        NmfConfig {
            dim,
            iterations: 200,
            seed: 1729,
            tolerance: 0.0,
            init: NmfInit::Svd,
        }
    }

    /// The paper's literal setup: random initialization.
    pub fn random_init(dim: usize) -> Self {
        NmfConfig {
            init: NmfInit::Random,
            ..NmfConfig::new(dim)
        }
    }
}

/// Result of an NMF fit: the model plus the per-iteration squared-error
/// trace (useful for the convergence ablation).
#[derive(Debug, Clone)]
pub struct NmfFit {
    /// The fitted nonnegative factor model.
    pub model: FactorModel,
    /// Squared reconstruction error after each iteration.
    pub error_trace: Vec<f64>,
}

/// Factors a fully observed nonnegative matrix.
pub fn fit_matrix(d: &Matrix, config: NmfConfig) -> Result<NmfFit> {
    validate(d, config.dim)?;
    for (i, j, v) in d.iter_entries() {
        if v < 0.0 {
            return Err(MfError::NegativeInput {
                row: i,
                col: j,
                value: v,
            });
        }
    }
    let mask = Matrix::filled(d.rows(), d.cols(), 1.0);
    Ok(fit_masked_inner(d, &mask, config, /*complete=*/ true))
}

/// Factors a distance matrix, using the masked updates (Eqs. 8–9) when
/// entries are missing.
pub fn fit(data: &DistanceMatrix, config: NmfConfig) -> Result<NmfFit> {
    validate(data.values(), config.dim)?;
    Ok(fit_masked_inner(
        data.values(),
        data.mask(),
        config,
        data.is_complete(),
    ))
}

fn validate(d: &Matrix, dim: usize) -> Result<()> {
    if d.rows() == 0 || d.cols() == 0 {
        return Err(MfError::InvalidInput("empty matrix".into()));
    }
    if dim == 0 {
        return Err(MfError::InvalidInput("dimension must be at least 1".into()));
    }
    Ok(())
}

/// Preallocated iteration workspace: every buffer the multiplicative
/// updates touch, sized once before the loop so the **iterations perform
/// no heap allocation** (asserted by `tests/alloc_free.rs`).
struct Workspace {
    /// `k x k` Gram matrix (`YᵀY`, then `XᵀX`).
    gram: Matrix,
    /// `m x k` numerator / denominator for the X update.
    num_x: Matrix,
    den_x: Matrix,
    /// `n x k` numerator / denominator for the Y update.
    num_y: Matrix,
    den_y: Matrix,
    /// Masked path: `D ∘ mask`, fixed across iterations.
    md: Matrix,
    /// Masked path: current masked reconstruction `(X Yᵀ) ∘ mask`.
    recon: Matrix,
    /// Complete path: row band of the reconstruction for the fused error.
    band: Matrix,
}

impl Workspace {
    fn new(m: usize, n: usize, k: usize, complete: bool) -> Self {
        let (mn_rows, mn_cols, band_rows) = if complete {
            (0, 0, crate::banded::ERROR_BAND_ROWS.min(m.max(1)))
        } else {
            (m, n, 0)
        };
        Workspace {
            gram: Matrix::zeros(k, k),
            num_x: Matrix::zeros(m, k),
            den_x: Matrix::zeros(m, k),
            num_y: Matrix::zeros(n, k),
            den_y: Matrix::zeros(n, k),
            md: Matrix::zeros(mn_rows, mn_cols),
            recon: Matrix::zeros(mn_rows, mn_cols),
            band: Matrix::zeros(band_rows, n),
        }
    }
}

fn fit_masked_inner(d: &Matrix, mask: &Matrix, config: NmfConfig, complete: bool) -> NmfFit {
    let (m, n) = d.shape();
    let k = config.dim.min(m).min(n);
    // For the warm start on incomplete data, impute missing entries with the
    // observed mean so the init SVD is not biased towards zero (or towards
    // stale values stored behind the mask).
    let init_matrix = if complete {
        d.clone()
    } else {
        let mut sum = 0.0;
        let mut count = 0usize;
        for (i, j, mv) in mask.iter_entries() {
            if mv == 1.0 {
                sum += d[(i, j)];
                count += 1;
            }
        }
        let mean = if count > 0 { sum / count as f64 } else { 0.0 };
        Matrix::from_fn(
            m,
            n,
            |i, j| if mask[(i, j)] == 1.0 { d[(i, j)] } else { mean },
        )
    };
    let (x, y) = initial_factors(&init_matrix, k, config);
    iterate_from(d, mask, x, y, config, complete)
}

/// Warm-start **partial refit**: continues the multiplicative updates from
/// an existing nonnegative factor model instead of a fresh initialization,
/// running at most `config.iterations` update pairs.
///
/// The streaming counterpart of [`fit`]: when a slab of the (possibly
/// masked) distance matrix drifts, a handful of Lee–Seung iterations from
/// the current factors re-converges far cheaper than the paper's 200-
/// iteration cold fit, because the start point is already near the local
/// optimum. Deterministic (no RNG) and allocation-free in the inner loop —
/// it reuses the same preallocated workspace machinery as [`fit`].
/// Factor entries at or below zero are floored to a tiny positive value so
/// the multiplicative updates are not locked at zero; `config.dim`,
/// `config.seed`, and `config.init` are ignored in favor of the model's
/// own factors.
pub fn refine(data: &DistanceMatrix, model: &FactorModel, config: NmfConfig) -> Result<NmfFit> {
    validate(data.values(), model.dim().max(1))?;
    let (m, n) = data.shape();
    if model.x().rows() != m || model.y().rows() != n {
        return Err(MfError::DimensionMismatch {
            x: model.x().shape(),
            y: model.y().shape(),
        });
    }
    let mut x = model.x().clone();
    let mut y = model.y().clone();
    x.map_inplace(|v| v.max(EPS));
    y.map_inplace(|v| v.max(EPS));
    Ok(iterate_from(
        data.values(),
        data.mask(),
        x,
        y,
        config,
        data.is_complete(),
    ))
}

/// The shared multiplicative-update loop, starting from the given factors.
fn iterate_from(
    d: &Matrix,
    mask: &Matrix,
    mut x: Matrix,
    mut y: Matrix,
    config: NmfConfig,
    complete: bool,
) -> NmfFit {
    let (m, n) = d.shape();
    let k = x.cols();
    let mut ws = Workspace::new(m, n, k, complete);
    if !complete {
        // Fixed numerator operand D ∘ mask, and the masked reconstruction
        // of the initial factors. Inside the loop the reconstruction is
        // recomputed exactly once per half-update and the end-of-iteration
        // error pass doubles as the next iteration's masking pass.
        for ((md, &dv), &mv) in ws
            .md
            .as_mut_slice()
            .iter_mut()
            .zip(d.as_slice())
            .zip(mask.as_slice())
        {
            *md = if mv == 1.0 { dv } else { 0.0 };
        }
        x.matmul_tr_into(&y, &mut ws.recon).expect("shapes agree");
        mask_recon_and_error(&mut ws.recon, d, mask);
    }

    let mut error_trace = Vec::with_capacity(config.iterations);
    let mut prev_err = f64::INFINITY;
    for _it in 0..config.iterations {
        let err = if complete {
            // Dense updates: X ← X ∘ (D Y) / (X (YᵀY)).
            y.tr_matmul_into(&y, &mut ws.gram).expect("shapes agree");
            d.matmul_into(&y, &mut ws.num_x).expect("shapes agree");
            x.matmul_into(&ws.gram, &mut ws.den_x)
                .expect("shapes agree");
            update_factor(&mut x, &ws.num_x, &ws.den_x);

            x.tr_matmul_into(&x, &mut ws.gram).expect("shapes agree");
            d.tr_matmul_into(&x, &mut ws.num_y).expect("shapes agree");
            y.matmul_into(&ws.gram, &mut ws.den_y)
                .expect("shapes agree");
            update_factor(&mut y, &ws.num_y, &ws.den_y);

            crate::banded::banded_sq_error(d, None, &x, &y, &mut ws.band)
        } else {
            // Masked updates (Eqs. 8–9): reconstruction enters only through
            // observed cells. `ws.recon` holds `(X Yᵀ) ∘ mask` for the
            // current factors, carried over from the previous iteration's
            // fused error pass.
            ws.md.matmul_into(&y, &mut ws.num_x).expect("shapes agree");
            ws.recon
                .matmul_into(&y, &mut ws.den_x)
                .expect("shapes agree");
            update_factor(&mut x, &ws.num_x, &ws.den_x);

            x.matmul_tr_into(&y, &mut ws.recon).expect("shapes agree");
            mask_recon_and_error(&mut ws.recon, d, mask);
            ws.md
                .tr_matmul_into(&x, &mut ws.num_y)
                .expect("shapes agree");
            ws.recon
                .tr_matmul_into(&x, &mut ws.den_y)
                .expect("shapes agree");
            update_factor(&mut y, &ws.num_y, &ws.den_y);

            // Fused: one pass masks the fresh reconstruction for the next
            // iteration *and* accumulates this iteration's squared error.
            x.matmul_tr_into(&y, &mut ws.recon).expect("shapes agree");
            mask_recon_and_error(&mut ws.recon, d, mask)
        };
        error_trace.push(err);
        if config.tolerance > 0.0 && prev_err.is_finite() {
            let rel_impr = (prev_err - err) / prev_err.max(EPS);
            if rel_impr >= 0.0 && rel_impr < config.tolerance {
                break;
            }
        }
        prev_err = err;
    }

    let model = FactorModel::new(x, y).expect("columns agree");
    NmfFit { model, error_trace }
}

/// Builds the initial nonnegative factors according to the configured
/// strategy.
fn initial_factors(d: &Matrix, k: usize, config: NmfConfig) -> (Matrix, Matrix) {
    match config.init {
        NmfInit::Random => {
            let mut rng = StdRng::seed_from_u64(config.seed);
            // Positive random entries scaled so X Yᵀ starts near the
            // magnitude of D.
            let scale = (d.mean().max(EPS) / k as f64).sqrt();
            (
                random::uniform(d.rows(), k, 0.5 * scale, 1.5 * scale, &mut rng),
                random::uniform(d.cols(), k, 0.5 * scale, 1.5 * scale, &mut rng),
            )
        }
        NmfInit::Svd => {
            // NNDSVDa (Boutsidis & Gallopoulos): for each singular triple,
            // keep the dominant sign-consistent part of (u, v); fill the
            // remaining zeros with the data mean so multiplicative updates
            // are not locked at zero.
            match ides_linalg::svd::svd_truncated(
                d,
                k,
                ides_linalg::svd::TruncatedSvdOptions::default(),
            ) {
                Ok(s) => {
                    let mut x = Matrix::zeros(d.rows(), k);
                    let mut y = Matrix::zeros(d.cols(), k);
                    for j in 0..k.min(s.singular_values.len()) {
                        let sv = s.singular_values[j].max(0.0);
                        let u = s.u.col(j);
                        let v = s.v.col(j);
                        let up: Vec<f64> = u.iter().map(|&a| a.max(0.0)).collect();
                        let un: Vec<f64> = u.iter().map(|&a| (-a).max(0.0)).collect();
                        let vp: Vec<f64> = v.iter().map(|&a| a.max(0.0)).collect();
                        let vn: Vec<f64> = v.iter().map(|&a| (-a).max(0.0)).collect();
                        let norm = |w: &[f64]| w.iter().map(|a| a * a).sum::<f64>().sqrt();
                        let (nup, nun, nvp, nvn) = (norm(&up), norm(&un), norm(&vp), norm(&vn));
                        let termp = nup * nvp;
                        let termn = nun * nvn;
                        let (uu, vv, term, nu, nv) = if termp >= termn {
                            (up, vp, termp, nup, nvp)
                        } else {
                            (un, vn, termn, nun, nvn)
                        };
                        if term <= 0.0 || nu <= 0.0 || nv <= 0.0 {
                            continue; // leave zeros; filled by the mean below
                        }
                        let scale = (sv * term).sqrt();
                        for i in 0..x.rows() {
                            x[(i, j)] = scale * uu[i] / nu;
                        }
                        for i in 0..y.rows() {
                            y[(i, j)] = scale * vv[i] / nv;
                        }
                    }
                    // "a" variant: replace zeros with the mean-derived level
                    // so they stay reachable by multiplicative updates.
                    let fill = (d.mean().max(EPS) / k as f64).sqrt() * 0.01;
                    x.map_inplace(|v| if v <= 0.0 { fill } else { v });
                    y.map_inplace(|v| if v <= 0.0 { fill } else { v });
                    (x, y)
                }
                Err(_) => initial_factors(
                    d,
                    k,
                    NmfConfig {
                        init: NmfInit::Random,
                        ..config
                    },
                ),
            }
        }
    }
}

/// In-place multiplicative update `f ← f ∘ num / den` with a positive floor.
fn update_factor(f: &mut Matrix, num: &Matrix, den: &Matrix) {
    for ((fv, &nv), &dv) in f
        .as_mut_slice()
        .iter_mut()
        .zip(num.as_slice())
        .zip(den.as_slice())
    {
        *fv = (*fv * nv / dv.max(EPS)).max(EPS);
    }
}

/// One fused row-major pass over the reconstruction: zeroes the cells the
/// mask hides (producing `(X Yᵀ) ∘ mask` in place) and accumulates
/// `Σ_observed (D − X Yᵀ)²` over the cells it keeps.
fn mask_recon_and_error(recon: &mut Matrix, d: &Matrix, mask: &Matrix) -> f64 {
    let mut err = 0.0;
    for ((rv, &dv), &mv) in recon
        .as_mut_slice()
        .iter_mut()
        .zip(d.as_slice())
        .zip(mask.as_slice())
    {
        if mv == 1.0 {
            let diff = dv - *rv;
            err += diff * diff;
        } else {
            *rv = 0.0;
        }
    }
    err
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::DistanceEstimator;

    fn low_rank_nonneg(n: usize) -> Matrix {
        // Exactly rank-2 nonnegative matrix.
        let b = Matrix::from_fn(n, 2, |i, j| 1.0 + ((i + j) as f64 * 0.37).sin().abs());
        let c = Matrix::from_fn(2, n, |i, j| 1.0 + ((i * 3 + j) as f64 * 0.21).cos().abs());
        b.matmul(&c).unwrap()
    }

    #[test]
    fn error_descends_monotonically() {
        // Lee–Seung updates are guaranteed non-increasing in the objective.
        let d = low_rank_nonneg(12);
        let fit = fit_matrix(
            &d,
            NmfConfig {
                dim: 3,
                iterations: 100,
                seed: 5,
                tolerance: 0.0,
                init: NmfInit::Random,
            },
        )
        .unwrap();
        for w in fit.error_trace.windows(2) {
            assert!(
                w[1] <= w[0] * (1.0 + 1e-9),
                "error increased: {} -> {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn recovers_low_rank_matrix() {
        let d = low_rank_nonneg(15);
        let fit = fit_matrix(
            &d,
            NmfConfig {
                dim: 2,
                iterations: 500,
                seed: 1,
                tolerance: 0.0,
                init: NmfInit::Random,
            },
        )
        .unwrap();
        let rel = (&d - &fit.model.reconstruct()).frobenius_norm() / d.frobenius_norm();
        assert!(rel < 0.02, "relative reconstruction error {rel}");
    }

    #[test]
    fn factors_are_nonnegative() {
        let d = low_rank_nonneg(10);
        let fit = fit_matrix(&d, NmfConfig::new(3)).unwrap();
        assert!(fit.model.x().is_nonnegative(0.0));
        assert!(fit.model.y().is_nonnegative(0.0));
        // Hence all predictions are nonnegative — NMF's guarantee over SVD.
        for i in 0..10 {
            for j in 0..10 {
                assert!(fit.model.estimate(i, j) >= 0.0);
            }
        }
    }

    #[test]
    fn rejects_negative_input() {
        let mut d = low_rank_nonneg(5);
        d[(2, 3)] = -1.0;
        assert!(matches!(
            fit_matrix(&d, NmfConfig::new(2)),
            Err(MfError::NegativeInput { row: 2, col: 3, .. })
        ));
    }

    #[test]
    fn masked_fit_ignores_missing_entries() {
        // Corrupt one entry but mask it out: fit should be as good as clean.
        let d = low_rank_nonneg(10);
        let mut corrupted = d.clone();
        corrupted[(1, 2)] = 500.0;
        let mut mask = Matrix::filled(10, 10, 1.0);
        mask[(1, 2)] = 0.0;
        let data = DistanceMatrix::with_mask("m", corrupted, mask).unwrap();
        let fit = fit(
            &data,
            NmfConfig {
                dim: 2,
                iterations: 400,
                seed: 3,
                tolerance: 0.0,
                init: NmfInit::Svd,
            },
        )
        .unwrap();
        // The masked cell should be *predicted* near the true low-rank value,
        // not the corrupted 500.
        let predicted = fit.model.estimate(1, 2);
        assert!(
            (predicted - d[(1, 2)]).abs() < 0.2 * d[(1, 2)],
            "predicted {predicted} vs true {}",
            d[(1, 2)]
        );
    }

    #[test]
    fn masked_updates_match_dense_on_complete_data() {
        let d = low_rank_nonneg(8);
        let cfg = NmfConfig {
            dim: 2,
            iterations: 50,
            seed: 9,
            tolerance: 0.0,
            init: NmfInit::Random,
        };
        let dense = fit_matrix(&d, cfg).unwrap();
        // Force the masked code path with an all-ones mask.
        let mask = Matrix::filled(8, 8, 1.0);
        let masked = fit_masked_inner(&d, &mask, cfg, false);
        let diff = dense
            .model
            .reconstruct()
            .max_abs_diff(&masked.model.reconstruct());
        assert!(diff < 1e-6, "dense and masked paths diverge: {diff}");
    }

    #[test]
    fn early_stopping_shortens_trace() {
        // Use a noisy (not exactly rank-2) target so the d=2 error plateaus
        // at a positive floor, which is what triggers relative-improvement
        // early stopping.
        let mut d = low_rank_nonneg(10);
        d.map_inplace(|v| v + 0.3);
        for i in 0..10 {
            d[(i, (i * 3) % 10)] += 0.5;
        }
        let full = fit_matrix(
            &d,
            NmfConfig {
                iterations: 300,
                tolerance: 0.0,
                ..NmfConfig::new(2)
            },
        )
        .unwrap();
        let early = fit_matrix(
            &d,
            NmfConfig {
                iterations: 300,
                tolerance: 1e-4,
                ..NmfConfig::new(2)
            },
        )
        .unwrap();
        assert!(early.error_trace.len() < full.error_trace.len());
        // And the early-stopped error is still close to the full-run error.
        let e_early = early.error_trace.last().unwrap();
        let e_full = full.error_trace.last().unwrap();
        assert!(
            e_early <= &(e_full * 1.05),
            "early {e_early} vs full {e_full}"
        );
    }

    #[test]
    fn two_hundred_iterations_suffice_claim() {
        // Verify the paper's claim on a realistic synthetic data set: with
        // the default warm start, the *relative Frobenius* reconstruction
        // error after 200 iterations is within 0.01 of the 1000-iteration
        // value, i.e. 200 iterations reach the practical optimum.
        let ds = ides_datasets::generators::gnp_like(19, 4).unwrap();
        let d = ds.matrix.values();
        let short = fit_matrix(
            d,
            NmfConfig {
                iterations: 200,
                ..NmfConfig::new(8)
            },
        )
        .unwrap();
        let long = fit_matrix(
            d,
            NmfConfig {
                iterations: 1000,
                ..NmfConfig::new(8)
            },
        )
        .unwrap();
        let norm = d.frobenius_norm();
        let r200 = short.error_trace.last().unwrap().sqrt() / norm;
        let r1000 = long.error_trace.last().unwrap().sqrt() / norm;
        assert!(
            r200 - r1000 < 0.02,
            "relative error 200-iter {r200} vs 1000-iter {r1000}"
        );
    }

    #[test]
    fn svd_init_starts_closer_than_random() {
        // The warm start's value is in early iterations: after the first
        // update its error must already be well below the random start's.
        let ds = ides_datasets::generators::gnp_like(19, 12).unwrap();
        let d = ds.matrix.values();
        let cfg = NmfConfig {
            iterations: 3,
            ..NmfConfig::new(8)
        };
        let warm = fit_matrix(d, cfg).unwrap();
        let cold = fit_matrix(
            d,
            NmfConfig {
                init: NmfInit::Random,
                ..cfg
            },
        )
        .unwrap();
        assert!(
            warm.error_trace[0] < cold.error_trace[0],
            "warm first-iteration error {} vs cold {}",
            warm.error_trace[0],
            cold.error_trace[0]
        );
    }

    #[test]
    fn dim_zero_rejected() {
        let d = low_rank_nonneg(4);
        assert!(fit_matrix(&d, NmfConfig::new(0)).is_err());
    }

    #[test]
    fn refine_recovers_from_drift_in_few_iterations() {
        let base = low_rank_nonneg(12);
        let data = DistanceMatrix::full("b", base.clone()).unwrap();
        let cold = fit(&data, NmfConfig::new(2)).unwrap();
        // Drift the matrix a few percent, then refine with a small budget.
        let mut drifted = base.clone();
        for (i, j, v) in base.iter_entries() {
            drifted[(i, j)] = v * (1.0 + 0.04 * ((i * 12 + j) as f64 * 0.9).cos());
        }
        let ddata = DistanceMatrix::full("d", drifted.clone()).unwrap();
        let budget = NmfConfig {
            iterations: 10,
            tolerance: 0.0,
            ..NmfConfig::new(2)
        };
        let warm = refine(&ddata, &cold.model, budget).unwrap();
        assert_eq!(warm.error_trace.len(), 10);
        // Warm refit beats both the stale model and a cold fit with the
        // same tiny budget.
        let stale_err: f64 = {
            let recon = cold.model.reconstruct();
            drifted
                .iter_entries()
                .map(|(i, j, v)| (v - recon[(i, j)]) * (v - recon[(i, j)]))
                .sum()
        };
        let cold_budget = fit(
            &ddata,
            NmfConfig {
                init: NmfInit::Random,
                ..budget
            },
        )
        .unwrap();
        let warm_err = *warm.error_trace.last().unwrap();
        assert!(warm_err < stale_err, "{warm_err} vs stale {stale_err}");
        assert!(
            warm_err < *cold_budget.error_trace.last().unwrap(),
            "warm {warm_err} vs cold-10-iter {}",
            cold_budget.error_trace.last().unwrap()
        );
        // Factors stay nonnegative through the refit.
        assert!(warm.model.x().is_nonnegative(0.0));
        assert!(warm.model.y().is_nonnegative(0.0));
    }

    #[test]
    fn refine_rejects_mismatched_model() {
        let data = DistanceMatrix::full("b", low_rank_nonneg(9)).unwrap();
        let other = fit_matrix(&low_rank_nonneg(5), NmfConfig::new(2)).unwrap();
        assert!(refine(&data, &other.model, NmfConfig::new(2)).is_err());
    }
}
