//! Shared band-buffered reconstruction error.
//!
//! Both the NMF and ALS fit loops report `Σ (D − X Yᵀ)²` over (observed)
//! cells every iteration. Materializing the `m x n` reconstruction per
//! iteration would dominate their memory traffic, so this helper produces
//! it a row band at a time with the blocked kernel — the only place in
//! `ides-mf` that reaches below the `Matrix` API into
//! [`ides_linalg::kernels`] directly.

use ides_linalg::kernels::{self, Op};
use ides_linalg::Matrix;

/// Rows of the reconstruction produced per band.
pub(crate) const ERROR_BAND_ROWS: usize = 32;

/// `Σ (D − X Yᵀ)²` over observed cells, computed band by band into the
/// reusable `band` scratch (shape `ERROR_BAND_ROWS x n`, allocated once by
/// the caller's workspace). `mask: None` treats every cell as observed;
/// `Some(mask)` sums only cells where the mask is exactly 1.
pub(crate) fn banded_sq_error(
    d: &Matrix,
    mask: Option<&Matrix>,
    x: &Matrix,
    y: &Matrix,
    band: &mut Matrix,
) -> f64 {
    let (m, n) = d.shape();
    let k = x.cols();
    let band_rows = band.rows().max(1);
    let mut err = 0.0;
    let mut i0 = 0;
    while i0 < m {
        let rows = band_rows.min(m - i0);
        kernels::gemm(
            &x.as_slice()[i0 * k..(i0 + rows) * k],
            Op::NoTrans,
            k,
            y.as_slice(),
            Op::Trans,
            k,
            &mut band.as_mut_slice()[..rows * n],
            rows,
            n,
            k,
        );
        let d_block = &d.as_slice()[i0 * n..(i0 + rows) * n];
        let recon_block = &band.as_slice()[..rows * n];
        match mask {
            None => {
                for (&dv, &rv) in d_block.iter().zip(recon_block.iter()) {
                    let diff = dv - rv;
                    err += diff * diff;
                }
            }
            Some(mask) => {
                let m_block = &mask.as_slice()[i0 * n..(i0 + rows) * n];
                for ((&dv, &mv), &rv) in d_block.iter().zip(m_block.iter()).zip(recon_block.iter())
                {
                    if mv == 1.0 {
                        let diff = dv - rv;
                        err += diff * diff;
                    }
                }
            }
        }
        i0 += rows;
    }
    err
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_full_reconstruction() {
        let x = Matrix::from_fn(70, 3, |i, j| ((i * 3 + j) as f64 * 0.31).sin());
        let y = Matrix::from_fn(50, 3, |i, j| ((i * 5 + j) as f64 * 0.17).cos());
        let d = Matrix::from_fn(70, 50, |i, j| ((i + j) as f64 * 0.07).sin() + 1.0);
        let recon = x.matmul_tr(&y).unwrap();
        let full: f64 = d
            .as_slice()
            .iter()
            .zip(recon.as_slice())
            .map(|(&dv, &rv)| (dv - rv) * (dv - rv))
            .sum();
        let mut band = Matrix::zeros(ERROR_BAND_ROWS, 50);
        let banded = banded_sq_error(&d, None, &x, &y, &mut band);
        assert!((banded - full).abs() <= 1e-12 * (1.0 + full));

        // Masked: hide a diagonal stripe and compare against the direct sum.
        let mask = Matrix::from_fn(70, 50, |i, j| if (i + j) % 7 == 0 { 0.0 } else { 1.0 });
        let masked_full: f64 = d
            .iter_entries()
            .map(|(i, j, dv)| {
                if mask[(i, j)] == 1.0 {
                    let diff = dv - recon[(i, j)];
                    diff * diff
                } else {
                    0.0
                }
            })
            .sum();
        let banded_masked = banded_sq_error(&d, Some(&mask), &x, &y, &mut band);
        assert!((banded_masked - masked_full).abs() <= 1e-12 * (1.0 + masked_full));
    }
}
