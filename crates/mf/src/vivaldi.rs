//! Vivaldi baseline (Dabek et al., SIGCOMM 2004) — extension.
//!
//! The paper discusses Vivaldi as related work (decentralized, landmark-
//! free) but does not benchmark against it; we include it as an extension
//! baseline. This is the centralized adaptive-timestep variant: every node
//! holds a coordinate and a confidence weight; each observed pair applies a
//! spring force scaled by the relative confidence of the two endpoints.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ides_datasets::DistanceMatrix;
use ides_linalg::Matrix;

use crate::error::{MfError, Result};
use crate::model::EuclideanModel;

/// Configuration for the Vivaldi fit.
#[derive(Debug, Clone, Copy)]
pub struct VivaldiConfig {
    /// Coordinate dimensionality.
    pub dim: usize,
    /// Passes over all observed pairs.
    pub rounds: usize,
    /// Confidence gain constant `c_c` (paper value 0.25).
    pub cc: f64,
    /// Error-update constant `c_e` (paper value 0.25).
    pub ce: f64,
    /// RNG seed for initial coordinates and pair order.
    pub seed: u64,
}

impl VivaldiConfig {
    /// Defaults matching the Vivaldi paper's constants.
    pub fn new(dim: usize) -> Self {
        VivaldiConfig {
            dim,
            rounds: 100,
            cc: 0.25,
            ce: 0.25,
            seed: 7,
        }
    }
}

/// Result of a Vivaldi run.
#[derive(Debug, Clone)]
pub struct VivaldiFit {
    /// Final coordinates as a Euclidean model.
    pub model: EuclideanModel,
    /// Final per-node error estimates (confidence; lower is better).
    pub node_error: Vec<f64>,
}

/// Runs centralized Vivaldi over all observed pairs of a square matrix.
pub fn fit(data: &DistanceMatrix, config: VivaldiConfig) -> Result<VivaldiFit> {
    if !data.is_square() {
        return Err(MfError::InvalidInput(
            "Vivaldi needs a square matrix".into(),
        ));
    }
    let n = data.rows();
    if n < 2 || config.dim == 0 {
        return Err(MfError::InvalidInput("need >= 2 hosts and dim >= 1".into()));
    }
    let d = config.dim;
    let mut rng = StdRng::seed_from_u64(config.seed);
    let spread = data.mean_distance().max(1.0);
    let mut coords = Matrix::from_fn(n, d, |_, _| rng.gen_range(-0.01 * spread..0.01 * spread));
    let mut node_error = vec![1.0_f64; n];

    // Collect observed off-diagonal pairs once.
    let pairs: Vec<(usize, usize, f64)> = data
        .observed_entries()
        .filter(|&(i, j, v)| i != j && v > 0.0)
        .collect();
    if pairs.is_empty() {
        return Err(MfError::InvalidInput(
            "no observed off-diagonal pairs".into(),
        ));
    }

    let mut order: Vec<usize> = (0..pairs.len()).collect();
    for _round in 0..config.rounds {
        // Shuffle the update order each round (Fisher–Yates).
        for k in (1..order.len()).rev() {
            let swap = rng.gen_range(0..=k);
            order.swap(k, swap);
        }
        for &p in &order {
            let (i, j, rtt) = pairs[p];
            let xi: Vec<f64> = coords.row(i).to_vec();
            let xj: Vec<f64> = coords.row(j).to_vec();
            let dist = EuclideanModel::distance(&xi, &xj);
            // Unit vector from j to i (random direction when coincident).
            let mut unit: Vec<f64> = xi.iter().zip(xj.iter()).map(|(&a, &b)| a - b).collect();
            let norm = unit.iter().map(|v| v * v).sum::<f64>().sqrt();
            if norm > 1e-12 {
                for u in &mut unit {
                    *u /= norm;
                }
            } else {
                for u in &mut unit {
                    *u = rng.gen_range(-1.0..1.0);
                }
                let n2 = unit.iter().map(|v| v * v).sum::<f64>().sqrt().max(1e-12);
                for u in &mut unit {
                    *u /= n2;
                }
            }
            // Relative confidence weight.
            let w = node_error[i] / (node_error[i] + node_error[j]).max(1e-12);
            let rel_err = (dist - rtt).abs() / rtt;
            // Update node i's error estimate (EWMA weighted by confidence).
            node_error[i] = rel_err * config.ce * w + node_error[i] * (1.0 - config.ce * w);
            // Move node i along the spring force.
            let delta = config.cc * w * (rtt - dist);
            let row = coords.row_mut(i);
            for (c, &u) in row.iter_mut().zip(unit.iter()) {
                *c += delta * u;
            }
        }
    }
    Ok(VivaldiFit {
        model: EuclideanModel::new(coords),
        node_error,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{reconstruction_errors, Cdf};

    fn euclidean_dataset(n: usize) -> DistanceMatrix {
        let coords: Vec<(f64, f64)> = (0..n)
            .map(|i| (((i * 7) % 5) as f64 * 20.0, ((i * 3) % 4) as f64 * 15.0))
            .collect();
        let values = Matrix::from_fn(n, n, |i, j| {
            let (xi, yi) = coords[i];
            let (xj, yj) = coords[j];
            ((xi - xj).powi(2) + (yi - yj).powi(2)).sqrt()
        });
        DistanceMatrix::full("euclid", values).unwrap()
    }

    #[test]
    fn converges_on_euclidean_data() {
        let data = euclidean_dataset(15);
        let fit = fit(
            &data,
            VivaldiConfig {
                rounds: 200,
                ..VivaldiConfig::new(2)
            },
        )
        .unwrap();
        let cdf = Cdf::new(reconstruction_errors(fit.model_ref(), &data));
        assert!(cdf.median() < 0.1, "median error {}", cdf.median());
    }

    #[test]
    fn node_errors_decrease() {
        let data = euclidean_dataset(12);
        let fit = fit(&data, VivaldiConfig::new(3)).unwrap();
        let mean_err: f64 = fit.node_error.iter().sum::<f64>() / fit.node_error.len() as f64;
        assert!(mean_err < 0.5, "mean node error {mean_err} (starts at 1.0)");
    }

    #[test]
    fn deterministic_per_seed() {
        let data = euclidean_dataset(8);
        let a = fit(&data, VivaldiConfig::new(2)).unwrap();
        let b = fit(&data, VivaldiConfig::new(2)).unwrap();
        assert_eq!(a.model.coords().as_slice(), b.model.coords().as_slice());
    }

    #[test]
    fn rejects_rectangular_and_degenerate() {
        let rect = DistanceMatrix::full("r", Matrix::zeros(2, 3)).unwrap();
        assert!(fit(&rect, VivaldiConfig::new(2)).is_err());
        let sq = euclidean_dataset(3);
        assert!(fit(
            &sq,
            VivaldiConfig {
                dim: 0,
                ..VivaldiConfig::new(2)
            }
        )
        .is_err());
        // All-zero matrix has no usable pairs.
        let zeros = DistanceMatrix::full("z", Matrix::zeros(3, 3)).unwrap();
        assert!(fit(&zeros, VivaldiConfig::new(2)).is_err());
    }

    impl VivaldiFit {
        fn model_ref(&self) -> &EuclideanModel {
            &self.model
        }
    }
}
