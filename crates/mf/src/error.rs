//! Error type for model fitting.
//!
//! Implemented by hand (no `thiserror`): the build environment is offline,
//! so derive-based error crates are unavailable; see `vendor/README.md`.

use std::fmt;

/// Result alias using [`MfError`].
pub type Result<T> = std::result::Result<T, MfError>;

/// Errors from factorization / embedding fits.
#[derive(Debug)]
pub enum MfError {
    /// X and Y factor dimensionalities disagree.
    DimensionMismatch {
        /// Shape of the X factor.
        x: (usize, usize),
        /// Shape of the Y factor.
        y: (usize, usize),
    },
    /// Input matrix shape is unusable (empty, or d exceeds size).
    InvalidInput(String),
    /// NMF requires nonnegative input.
    NegativeInput {
        /// Row of the offending entry.
        row: usize,
        /// Column of the offending entry.
        col: usize,
        /// The negative value.
        value: f64,
    },
    /// Propagated linear-algebra failure.
    Linalg(ides_linalg::LinalgError),
}

impl fmt::Display for MfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MfError::DimensionMismatch { x, y } => write!(
                f,
                "factor dimension mismatch: X is {}x{}, Y is {}x{}",
                x.0, x.1, y.0, y.1
            ),
            MfError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            MfError::NegativeInput { row, col, value } => {
                write!(f, "NMF input has negative entry {value} at ({row},{col})")
            }
            MfError::Linalg(e) => write!(f, "linear algebra error: {e}"),
        }
    }
}

impl std::error::Error for MfError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MfError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ides_linalg::LinalgError> for MfError {
    fn from(e: ides_linalg::LinalgError) -> Self {
        MfError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = MfError::DimensionMismatch {
            x: (5, 3),
            y: (4, 2),
        };
        assert!(e.to_string().contains("5x3"));
        assert!(e.to_string().contains("4x2"));
        let e = MfError::NegativeInput {
            row: 1,
            col: 2,
            value: -3.0,
        };
        assert!(e.to_string().contains("-3"));
        let e: MfError = ides_linalg::LinalgError::NotPositiveDefinite.into();
        assert!(e.to_string().contains("linear algebra error"));
    }
}
