//! Error type for model fitting.

use thiserror::Error;

/// Result alias using [`MfError`].
pub type Result<T> = std::result::Result<T, MfError>;

/// Errors from factorization / embedding fits.
#[derive(Debug, Error)]
pub enum MfError {
    /// X and Y factor dimensionalities disagree.
    #[error("factor dimension mismatch: X is {}x{}, Y is {}x{}", x.0, x.1, y.0, y.1)]
    DimensionMismatch {
        /// Shape of the X factor.
        x: (usize, usize),
        /// Shape of the Y factor.
        y: (usize, usize),
    },
    /// Input matrix shape is unusable (empty, or d exceeds size).
    #[error("invalid input: {0}")]
    InvalidInput(String),
    /// NMF requires nonnegative input.
    #[error("NMF input has negative entry {value} at ({row},{col})")]
    NegativeInput {
        /// Row of the offending entry.
        row: usize,
        /// Column of the offending entry.
        col: usize,
        /// The negative value.
        value: f64,
    },
    /// Propagated linear-algebra failure.
    #[error("linear algebra error: {0}")]
    Linalg(#[from] ides_linalg::LinalgError),
}
