//! # ides-mf
//!
//! The paper's core contribution (§3–§4): modeling network distance
//! matrices as the product of two low-rank factors, `D ≈ X Yᵀ`, where each
//! host carries an *outgoing* vector (row of `X`) and an *incoming* vector
//! (row of `Y`), and the estimated distance from `i` to `j` is `X_i · Y_j`.
//! Unlike Euclidean network embeddings, this representation can express
//! asymmetric distances and triangle-inequality violations.
//!
//! * [`svd_model`] — SVD factorization (Eqs. 5–6), the global optimum of
//!   the squared error (Eq. 7).
//! * [`nmf`] — nonnegative matrix factorization by Lee–Seung multiplicative
//!   updates, including the masked variant (Eqs. 8–9) for missing data.
//! * [`als`] / [`nmf`] both expose warm-start partial refits
//!   ([`als::refine`], [`nmf::refine`]): a bounded number of
//!   deterministic update sweeps from existing factors, the
//!   recompute-free maintenance step behind `ides`' streaming update
//!   subsystem.
//! * [`lipschitz`] — the ICS / Virtual Landmark baseline (Lipschitz
//!   embedding + PCA + linear normalization).
//! * [`gnp`] — the GNP baseline (Euclidean embedding by Simplex Downhill).
//! * [`vivaldi`] — the Vivaldi spring model (extension baseline).
//! * [`metrics`] — the modified relative error (Eq. 10) and CDF helpers.
//! * [`optimizer`] — the Nelder–Mead simplex method used by GNP.
//!
//! ```
//! use ides_mf::svd_model::{fit_matrix, SvdConfig};
//! use ides_mf::model::DistanceEstimator;
//! use ides_netsim::topology::figure1_distance_matrix;
//!
//! // §4.1 worked example: the Figure-1 matrix factors exactly at d = 3.
//! let d = figure1_distance_matrix();
//! let model = fit_matrix(&d, SvdConfig { dim: 3, force_exact: true }).unwrap();
//! assert!((model.estimate(0, 3) - 2.0).abs() < 1e-9);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod als;
mod banded;
pub mod error;
pub mod gnp;
pub mod lipschitz;
pub mod metrics;
pub mod model;
pub mod nmf;
pub mod optimizer;
pub mod svd_model;
pub mod vivaldi;

pub use error::{MfError, Result};
pub use model::{BatchEmbed, DistanceEstimator, EuclideanModel, FactorModel};
