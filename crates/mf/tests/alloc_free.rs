//! Asserts the allocation-freedom of the NMF and ALS iteration loops: a
//! counting global allocator measures two fits that differ only in
//! iteration count, so any per-iteration heap allocation shows up as a
//! count difference proportional to the extra iterations.
//!
//! This is the enforcement test for the workspace refactor: every buffer
//! the multiplicative updates and ALS sweeps touch is preallocated before
//! the loop, and the blocked GEMM kernels reuse thread-local packing
//! buffers, so once warm the loops must not allocate at all.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use ides_datasets::DistanceMatrix;
use ides_linalg::Matrix;
use ides_mf::als::{self, AlsConfig};
use ides_mf::nmf::{self, NmfConfig, NmfInit};

struct CountingAllocator;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Runs `f` and returns `(allocation calls, allocated bytes)` during it.
fn count_allocs<R>(f: impl FnOnce() -> R) -> (u64, u64, R) {
    let calls0 = ALLOC_CALLS.load(Ordering::Relaxed);
    let bytes0 = ALLOC_BYTES.load(Ordering::Relaxed);
    let r = f();
    (
        ALLOC_CALLS.load(Ordering::Relaxed) - calls0,
        ALLOC_BYTES.load(Ordering::Relaxed) - bytes0,
        r,
    )
}

fn low_rank_nonneg(n: usize) -> Matrix {
    let b = Matrix::from_fn(n, 4, |i, j| 1.0 + ((i + j) as f64 * 0.37).sin().abs());
    let c = Matrix::from_fn(4, n, |i, j| 1.0 + ((i * 3 + j) as f64 * 0.21).cos().abs());
    b.matmul(&c).unwrap()
}

/// The acceptance check: an NMF fit of a 256×256 matrix allocates no
/// factor-sized buffers inside the iteration loop. Two fits differing by
/// 40 iterations must show (near-)zero allocation difference — a single
/// `m x k` factor buffer per iteration would add 40 allocations and
/// ~8 MB to the delta.
#[test]
fn nmf_complete_iterations_allocate_nothing() {
    let d = low_rank_nonneg(256);
    let cfg = |iterations| NmfConfig {
        iterations,
        init: NmfInit::Random,
        tolerance: 0.0,
        ..NmfConfig::new(10)
    };
    // Warm the thread-local GEMM packing buffers and the allocator pools.
    let _ = nmf::fit_matrix(&d, cfg(2)).unwrap();

    let (calls_short, bytes_short, short) = count_allocs(|| nmf::fit_matrix(&d, cfg(5)).unwrap());
    let (calls_long, bytes_long, long) = count_allocs(|| nmf::fit_matrix(&d, cfg(45)).unwrap());
    assert_eq!(short.error_trace.len(), 5);
    assert_eq!(long.error_trace.len(), 45);

    let call_delta = calls_long.saturating_sub(calls_short);
    let byte_delta = bytes_long.saturating_sub(bytes_short);
    assert!(
        call_delta == 0,
        "40 extra NMF iterations performed {call_delta} heap allocations \
         ({byte_delta} bytes): the iteration loop is supposed to be \
         allocation-free (short fit: {calls_short} calls / {bytes_short} B, \
         long fit: {calls_long} calls / {bytes_long} B)"
    );
}

/// Same property for the masked (missing-entry) update path.
#[test]
fn nmf_masked_iterations_allocate_nothing() {
    let base = low_rank_nonneg(96);
    let mut mask = Matrix::filled(96, 96, 1.0);
    for i in 0..96 {
        mask[(i, (i * 7) % 96)] = 0.0;
    }
    let mut values = base.clone();
    for i in 0..96 {
        values[(i, (i * 7) % 96)] = 0.0;
    }
    let data = DistanceMatrix::with_mask("alloc", values, mask).unwrap();
    let cfg = |iterations| NmfConfig {
        iterations,
        init: NmfInit::Random,
        tolerance: 0.0,
        ..NmfConfig::new(8)
    };
    let _ = nmf::fit(&data, cfg(2)).unwrap();

    let (calls_short, _, _) = count_allocs(|| nmf::fit(&data, cfg(5)).unwrap());
    let (calls_long, bytes_long, _) = count_allocs(|| nmf::fit(&data, cfg(45)).unwrap());
    let call_delta = calls_long.saturating_sub(calls_short);
    assert!(
        call_delta == 0,
        "40 extra masked NMF iterations performed {call_delta} heap \
         allocations ({bytes_long} bytes in the long fit)"
    );
}

/// ALS sweeps reuse the gathered LS system, right-hand side, and
/// normal-equation scratch: extra sweeps must not allocate.
#[test]
fn als_sweeps_allocate_nothing() {
    let d = DistanceMatrix::full("als-alloc", low_rank_nonneg(96)).unwrap();
    let cfg = |sweeps| AlsConfig {
        sweeps,
        tolerance: 0.0,
        ..AlsConfig::new(6)
    };
    let _ = als::fit(&d, cfg(2)).unwrap();

    let (calls_short, _, _) = count_allocs(|| als::fit(&d, cfg(3)).unwrap());
    let (calls_long, bytes_long, _) = count_allocs(|| als::fit(&d, cfg(13)).unwrap());
    let call_delta = calls_long.saturating_sub(calls_short);
    assert!(
        call_delta == 0,
        "10 extra ALS sweeps performed {call_delta} heap allocations \
         ({bytes_long} bytes in the long fit)"
    );
}
