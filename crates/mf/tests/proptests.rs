//! Property-based tests for the factorization models and metrics.

use ides_datasets::DistanceMatrix;
use ides_linalg::Matrix;
use ides_mf::metrics::{modified_relative_error, Cdf};
use ides_mf::model::{DistanceEstimator, EuclideanModel, FactorModel};
use ides_mf::nmf::{self, NmfConfig, NmfInit};
use ides_mf::svd_model::{fit_matrix, SvdConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The modified relative error (Eq. 10) is zero iff exact, always
    /// nonnegative, finite, and penalizes underestimation at least as hard
    /// as the same-magnitude overestimation.
    #[test]
    fn relative_error_properties(actual in 0.01f64..1000.0, delta in 0.0f64..0.99) {
        prop_assert_eq!(modified_relative_error(actual, actual), 0.0);
        let over = modified_relative_error(actual, actual * (1.0 + delta));
        let under = modified_relative_error(actual, actual * (1.0 - delta));
        prop_assert!(over >= 0.0 && over.is_finite());
        prop_assert!(under >= 0.0 && under.is_finite());
        prop_assert!(under + 1e-12 >= over, "under {} < over {}", under, over);
    }

    /// Full-rank SVD factorization reconstructs any matrix exactly —
    /// including asymmetric and triangle-violating ones.
    #[test]
    fn full_rank_factorization_is_exact(vals in prop::collection::vec(0.0f64..100.0, 25)) {
        let mut d = Matrix::from_vec(5, 5, vals).unwrap();
        for i in 0..5 {
            d[(i, i)] = 0.0;
        }
        let model = fit_matrix(&d, SvdConfig { dim: 5, force_exact: true }).unwrap();
        prop_assert!(model.reconstruct().approx_eq(&d, 1e-7));
    }

    /// Rank-(d+1) SVD reconstruction error never exceeds rank-d error.
    #[test]
    fn svd_error_monotone_in_dimension(vals in prop::collection::vec(0.0f64..100.0, 36)) {
        let d = Matrix::from_vec(6, 6, vals).unwrap();
        let mut prev = f64::INFINITY;
        for dim in 1..=6 {
            let model = fit_matrix(&d, SvdConfig { dim, force_exact: true }).unwrap();
            let err = (&d - &model.reconstruct()).frobenius_norm();
            prop_assert!(err <= prev + 1e-9, "dim {}: {} > {}", dim, err, prev);
            prev = err;
        }
    }

    /// NMF factors stay nonnegative and its error trace never increases.
    #[test]
    fn nmf_invariants(vals in prop::collection::vec(0.0f64..50.0, 36), seed in 0u64..100) {
        let d = Matrix::from_vec(6, 6, vals).unwrap();
        let cfg = NmfConfig { iterations: 40, seed, init: NmfInit::Random, ..NmfConfig::new(3) };
        let fit = nmf::fit_matrix(&d, cfg).unwrap();
        prop_assert!(fit.model.x().is_nonnegative(0.0));
        prop_assert!(fit.model.y().is_nonnegative(0.0));
        for w in fit.error_trace.windows(2) {
            prop_assert!(w[1] <= w[0] * (1.0 + 1e-9), "{} -> {}", w[0], w[1]);
        }
    }

    /// The factor model serializes losslessly.
    #[test]
    fn factor_model_serde_roundtrip(
        x in prop::collection::vec(-10.0f64..10.0, 8),
        y in prop::collection::vec(-10.0f64..10.0, 12)
    ) {
        let model = FactorModel::new(
            Matrix::from_vec(4, 2, x).unwrap(),
            Matrix::from_vec(6, 2, y).unwrap(),
        )
        .unwrap();
        let json = serde_json::to_string(&model).unwrap();
        let back: FactorModel = serde_json::from_str(&json).unwrap();
        for i in 0..4 {
            for j in 0..6 {
                prop_assert!((model.estimate(i, j) - back.estimate(i, j)).abs() < 1e-12);
            }
        }
    }

    /// Euclidean models always satisfy symmetry and the triangle
    /// inequality — the §2.2 limitation the factor model removes.
    #[test]
    fn euclidean_model_is_constrained(coords in prop::collection::vec(-100.0f64..100.0, 12)) {
        let m = EuclideanModel::new(Matrix::from_vec(4, 3, coords).unwrap());
        for a in 0..4 {
            prop_assert_eq!(m.estimate(a, a), 0.0);
            for b in 0..4 {
                prop_assert_eq!(m.estimate(a, b), m.estimate(b, a));
                for c in 0..4 {
                    prop_assert!(m.estimate(a, c) <= m.estimate(a, b) + m.estimate(b, c) + 1e-9);
                }
            }
        }
    }

    /// CDF quantiles are monotone in p and bracket the sample range.
    #[test]
    fn cdf_quantile_monotone(samples in prop::collection::vec(0.0f64..100.0, 1..60)) {
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(0.0_f64, f64::max);
        let cdf = Cdf::new(samples);
        let mut prev = f64::NEG_INFINITY;
        for k in 0..=10 {
            let q = cdf.quantile(k as f64 / 10.0);
            prop_assert!(q >= prev - 1e-12);
            prop_assert!(q >= min - 1e-12 && q <= max + 1e-12);
            prev = q;
        }
        prop_assert_eq!(cdf.fraction_below(max), 1.0);
    }

    /// Masked NMF never reads masked cells: flipping a masked cell's value
    /// leaves the fit unchanged.
    #[test]
    fn masked_nmf_ignores_hidden_values(seed in 0u64..50, hidden in 0.0f64..1000.0) {
        let base = Matrix::from_fn(6, 6, |i, j| if i == j { 0.0 } else { 10.0 + ((i * 6 + j) % 7) as f64 });
        let mut mask = Matrix::filled(6, 6, 1.0);
        mask[(1, 4)] = 0.0;
        let mut altered = base.clone();
        altered[(1, 4)] = hidden;
        let cfg = NmfConfig { iterations: 30, seed, init: NmfInit::Random, ..NmfConfig::new(2) };
        let d1 = DistanceMatrix::with_mask("a", base, mask.clone()).unwrap();
        let d2 = DistanceMatrix::with_mask("b", altered, mask).unwrap();
        let f1 = nmf::fit(&d1, cfg).unwrap();
        let f2 = nmf::fit(&d2, cfg).unwrap();
        let diff = f1.model.reconstruct().max_abs_diff(&f2.model.reconstruct());
        prop_assert!(diff < 1e-9, "masked value leaked into fit: {}", diff);
    }
}
