//! Shared harness for the per-figure/per-table experiment binaries.
//!
//! Each binary regenerates one table or figure from the paper's evaluation
//! (§4.3 and §6); see DESIGN.md's experiment index for the mapping. Output
//! is plain text: one series per block, `x y` rows, suitable for gnuplot or
//! eyeballing against the paper's plots.

use ides_datasets::generators::{self, paper_sizes, GeneratedDataset};
use ides_datasets::stats;

/// Scale knob for quick runs: `IDES_SCALE` in `(0, 1]` shrinks every data
/// set (e.g. `IDES_SCALE=0.1 cargo run --bin fig2`). Defaults to 1 (paper
/// sizes).
pub fn scale() -> f64 {
    std::env::var("IDES_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|&s| s > 0.0 && s <= 1.0)
        .unwrap_or(1.0)
}

/// Applies the scale factor to a paper-scale host count (minimum 12).
pub fn scaled(n: usize) -> usize {
    ((n as f64 * scale()).round() as usize).max(12)
}

/// Master seed for all experiments (override with `IDES_SEED`).
pub fn seed() -> u64 {
    std::env::var("IDES_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(20041025)
}

/// The five paper data sets by name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dataset {
    /// NLANR AMP 110-host clique stand-in.
    Nlanr,
    /// GNP 19-host symmetric set stand-in.
    Gnp,
    /// AGNP 869×19 asymmetric set stand-in.
    Agnp,
    /// P2PSim/King ~1143-host set stand-in.
    P2pSim,
    /// PlanetLab all-pairs-ping 169-host set stand-in.
    PlRtt,
}

impl Dataset {
    /// Parses a dataset name (as passed on the command line).
    pub fn parse(name: &str) -> Option<Dataset> {
        match name.to_ascii_lowercase().as_str() {
            "nlanr" => Some(Dataset::Nlanr),
            "gnp" => Some(Dataset::Gnp),
            "agnp" => Some(Dataset::Agnp),
            "p2psim" => Some(Dataset::P2pSim),
            "plrtt" | "pl-rtt" => Some(Dataset::PlRtt),
            _ => None,
        }
    }

    /// Canonical name.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::Nlanr => "nlanr",
            Dataset::Gnp => "gnp",
            Dataset::Agnp => "agnp",
            Dataset::P2pSim => "p2psim",
            Dataset::PlRtt => "pl-rtt",
        }
    }

    /// Generates the data set at the configured scale.
    pub fn generate(self, seed: u64) -> GeneratedDataset {
        match self {
            Dataset::Nlanr => {
                generators::nlanr_like(scaled(paper_sizes::NLANR), seed).expect("nlanr generation")
            }
            Dataset::Gnp => generators::gnp_like(scaled(paper_sizes::GNP).min(19), seed)
                .expect("gnp generation"),
            Dataset::Agnp => generators::agnp_like(
                scaled(paper_sizes::AGNP_ROWS),
                scaled(paper_sizes::AGNP_COLS).min(19),
                seed,
            )
            .expect("agnp generation"),
            Dataset::P2pSim => generators::p2psim_like(scaled(paper_sizes::P2PSIM), seed)
                .expect("p2psim generation"),
            Dataset::PlRtt => {
                generators::plrtt_like(scaled(paper_sizes::PLRTT), seed).expect("plrtt generation")
            }
        }
    }

    /// All five data sets.
    pub fn all() -> [Dataset; 5] {
        [
            Dataset::Nlanr,
            Dataset::Gnp,
            Dataset::Agnp,
            Dataset::P2pSim,
            Dataset::PlRtt,
        ]
    }
}

/// Prints a dataset summary header (shape, TIV fraction, asymmetry, rank).
pub fn print_summary(ds: &GeneratedDataset) {
    let s = stats::summarize(&ds.matrix);
    println!(
        "# {}: {}x{}, mean RTT {:.1} ms, observed {:.1}%, TIV {:.1}%, asym {:.3}, eff-rank(95%) {}",
        s.name,
        s.shape.0,
        s.shape.1,
        s.mean_rtt_ms,
        s.observed_fraction * 100.0,
        s.tiv_fraction * 100.0,
        s.asymmetry,
        s.effective_rank_95
    );
}

/// Prints one CDF series in `value probability` rows under a `# label`.
pub fn print_cdf(label: &str, cdf: &ides_mf::metrics::Cdf, points: usize) {
    println!(
        "\n# series: {label} (n={}, median={:.4}, p90={:.4})",
        cdf.len(),
        cdf.median(),
        cdf.p90()
    );
    for (value, prob) in cdf.curve(points) {
        println!("{value:.5} {prob:.4}");
    }
}

/// First CLI argument, lowercased.
pub fn arg1() -> Option<String> {
    std::env::args().nth(1).map(|s| s.to_ascii_lowercase())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_parsing() {
        assert_eq!(Dataset::parse("NLANR"), Some(Dataset::Nlanr));
        assert_eq!(Dataset::parse("pl-rtt"), Some(Dataset::PlRtt));
        assert_eq!(Dataset::parse("plrtt"), Some(Dataset::PlRtt));
        assert_eq!(Dataset::parse("bogus"), None);
        for d in Dataset::all() {
            assert_eq!(Dataset::parse(d.name()), Some(d));
        }
    }

    #[test]
    fn scaled_has_floor() {
        // Without the env var, scale is 1.
        assert_eq!(scaled(110), 110);
    }
}
