//! Figure 2: CDF of reconstruction relative error by SVD, d = 10, over all
//! five data sets.
//!
//! Expected shape (paper): GNP best (>90 % of pairs within 9 % error),
//! NLANR close behind (~90 % within 15 %), P2PSim and PL-RTT the hardest
//! (90th percentile around 50 %).

use ides_experiments::{print_cdf, print_summary, seed, Dataset};
use ides_mf::metrics::{reconstruction_errors, Cdf};
use ides_mf::svd_model::{fit, SvdConfig};

fn main() {
    let d = 10;
    println!("# Figure 2: CDF of relative error, SVD reconstruction, d = {d}");
    for dataset in Dataset::all() {
        let ds = dataset.generate(seed());
        print_summary(&ds);
        // SVD needs a complete matrix; p2psim_like already filters, the
        // others are complete by construction.
        let data = if ds.matrix.is_complete() || !ds.matrix.is_square() {
            ds.matrix.clone()
        } else {
            ds.matrix.filter_complete().expect("square dataset").0
        };
        if !data.is_complete() {
            println!(
                "# {}: skipped ({}% observed, SVD needs complete data)",
                dataset.name(),
                data.observed_fraction() * 100.0
            );
            continue;
        }
        let model = fit(&data, SvdConfig::new(d)).expect("svd fit");
        let errors = reconstruction_errors(&model, &data);
        print_cdf(dataset.name(), &Cdf::new(errors), 100);
    }
}
