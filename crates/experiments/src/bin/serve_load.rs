//! Serving-engine load experiment: the `ides::service` headline numbers.
//!
//! Runs the standard serving measurement
//! ([`ides::service::load::ServeSummary`], shared with `ides-cli serve`)
//! at deployment scale: 64 landmarks at d = 16 with 500 admitted hosts
//! by default — the scale where per-request admission work is nontrivial
//! and coalescing pays; at the paper's 20×8 toy scale a single QR join
//! costs ~2µs and coordination overhead dominates. Measures:
//!
//! * **Admission**: 500 concurrent joiners through the coalescer vs the
//!   conventional per-request QR path (`QueryEngine::join_per_request`),
//!   barrier-timed — the coalesced-vs-per-request speedup is gated by
//!   `scripts/check_bench.sh` via the `serve` bench group and must stay
//!   ≥ 5x here.
//! * **Query latency**: p50/p99 over all queries, first quiescent, then
//!   with a writer thread applying drift epochs continuously — the
//!   snapshot design's claim is p99 under drift within 2x of quiescent.
//!
//! `--json` emits the one-line flat summary; `scripts/run_benches.sh`
//! merges it into the committed `BENCH_NNNN.json` as the `serving`
//! object.

use std::time::Duration;

use ides::service::load::{ServeMeasurementConfig, ServeSummary};
use ides_experiments::seed;

fn main() {
    let mut json = false;
    let mut config = ServeMeasurementConfig {
        seed: seed(),
        ..ServeMeasurementConfig::default()
    };
    let mut duration_s = 4.0f64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json = true,
            "--duration-s" => {
                duration_s = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--duration-s S");
            }
            "--hosts" => {
                config.hosts = args.next().and_then(|v| v.parse().ok()).expect("--hosts N");
            }
            "--threads" => {
                config.threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threads N");
            }
            other => panic!("unknown argument {other}"),
        }
    }
    config.hosts = ((config.hosts as f64) * ides_experiments::scale())
        .round()
        .max(12.0) as usize;
    config.phase = Duration::from_secs_f64((duration_s / 2.0).max(0.25));

    eprintln!(
        "# serving {} landmarks + {} hosts at d={} (max_batch {}, linger {:?})",
        config.landmarks, config.hosts, config.dim, config.service.max_batch, config.service.linger
    );
    let summary = ServeSummary::measure(config).expect("serve measurement");
    eprintln!(
        "# admission ({} joiners): coalesced {:.0}/s in {} flushes vs per-request {:.0}/s => {:.2}x",
        summary.admission.joiners,
        summary.admission.coalesced_per_sec,
        summary.admission.coalesced_flushes,
        summary.admission.per_request_per_sec,
        summary.admission.speedup
    );
    eprintln!(
        "# queries quiescent:   p50 {:.2}us p99 {:.2}us ({:.0} qps, cache hit {:.0}%)",
        summary.quiescent_us(0.5),
        summary.quiescent_us(0.99),
        summary.quiescent.queries_per_sec,
        summary.quiescent.cache_hit_rate * 100.0
    );
    eprintln!(
        "# queries under drift: p50 {:.2}us p99 {:.2}us ({:.0} qps, {} epochs)",
        summary.drift_us(0.5),
        summary.drift_us(0.99),
        summary.drifting.queries_per_sec,
        summary.drifting.epochs
    );
    eprintln!("# p99 drift/quiescent: {:.2}x", summary.p99_ratio());

    if json {
        println!("{}", summary.to_json());
    }
}
