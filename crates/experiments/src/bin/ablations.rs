//! Ablations of the design choices called out in DESIGN.md §5:
//!
//! 1. **Join solver**: QR vs the paper's normal equations vs NNLS —
//!    accuracy on the same joins.
//! 2. **Landmark selection**: random (paper) vs greedy k-center spread.
//! 3. **Relaxed architecture**: accuracy vs the number of reference nodes
//!    `k` an ordinary host measures (k ≥ d; larger k → better joins).
//! 4. **NMF iteration budget**: error after {25, 50, 100, 200, 400}
//!    multiplicative updates, random vs SVD warm start.
//!
//! Usage: `ablations [solver|landmarks|relaxed|nmf]` (default: all).

use ides::eval::evaluate_ides;
use ides::projection::{JoinOptions, JoinSolver};
use ides::system::{
    select_random_landmarks, select_spread_landmarks, split_landmarks, IdesConfig,
    InformationServer,
};
use ides_experiments::{arg1, seed, Dataset};
use ides_mf::metrics::{modified_relative_error, Cdf};
use ides_mf::nmf::{self, NmfConfig, NmfInit};

fn solver_ablation() {
    println!("\n== join-solver ablation (NLANR-like, 20 landmarks, d=8) ==");
    let ds = Dataset::Nlanr.generate(seed());
    let n = ds.matrix.rows();
    let (landmarks, ordinary) = split_landmarks(n, 20.min(n - 2), seed());
    for (label, solver) in [
        ("QR", JoinSolver::Qr),
        ("normal equations (paper)", JoinSolver::NormalEquations),
        ("NNLS", JoinSolver::NonNegative),
    ] {
        let mut config = IdesConfig::new(8);
        config.join = JoinOptions { solver, ridge: 0.0 };
        let r = evaluate_ides(&ds.matrix, &landmarks, &ordinary, config).expect("evaluation");
        let build = r.build_seconds;
        let cdf = r.into_cdf();
        println!(
            "  {label:<26} median {:.4}  p90 {:.4}  build {build:.3}s",
            cdf.median(),
            cdf.p90(),
        );
    }
}

fn landmark_ablation() {
    println!("\n== landmark-selection ablation (NLANR-like, d=8) ==");
    let ds = Dataset::Nlanr.generate(seed());
    let n = ds.matrix.rows();
    for m in [15usize, 20, 30] {
        if m + 2 >= n {
            continue;
        }
        let random = select_random_landmarks(n, m, seed());
        let spread = select_spread_landmarks(&ds.matrix, m);
        for (label, landmarks) in [("random", random), ("k-center spread", spread)] {
            let ordinary: Vec<usize> = (0..n).filter(|i| !landmarks.contains(i)).collect();
            let r = evaluate_ides(&ds.matrix, &landmarks, &ordinary, IdesConfig::new(8))
                .expect("evaluation");
            let cdf = r.into_cdf();
            println!(
                "  m={m:<3} {label:<16} median {:.4}  p90 {:.4}",
                cdf.median(),
                cdf.p90()
            );
        }
    }
}

fn relaxed_ablation() {
    println!("\n== relaxed-architecture ablation: accuracy vs k reference nodes (d=8) ==");
    let ds = Dataset::Nlanr.generate(seed());
    let n = ds.matrix.rows();
    let m = 30.min(n - 2);
    let (landmarks, ordinary) = split_landmarks(n, m, seed());
    let lm = ds.matrix.submatrix(&landmarks, &landmarks);
    let server = InformationServer::build(&lm, IdesConfig::new(8)).expect("server");
    println!("  (k of {m} landmarks measured per host; evaluated on ordinary pairs)");
    for k in [8usize, 10, 12, 16, 20, 30] {
        if k > m {
            continue;
        }
        // One workspace across all partial joins: the gathered reference
        // submatrices and solver scratch are reused host to host.
        let mut ws = ides::projection::JoinWorkspace::new();
        let mut joined = Vec::new();
        for (hi, &h) in ordinary.iter().enumerate() {
            // Deterministic per-host subset: rotate through the landmarks.
            let observed: Vec<usize> = (0..k).map(|t| (hi + t * m / k) % m).collect();
            let mut obs_sorted = observed.clone();
            obs_sorted.sort_unstable();
            obs_sorted.dedup();
            let d_out: Vec<f64> = obs_sorted
                .iter()
                .map(|&i| ds.matrix.get(h, landmarks[i]).unwrap())
                .collect();
            let d_in: Vec<f64> = obs_sorted
                .iter()
                .map(|&i| ds.matrix.get(landmarks[i], h).unwrap())
                .collect();
            if let Ok(v) = server.join_partial_with(&mut ws, &obs_sorted, &d_out, &d_in) {
                joined.push((h, v));
            }
        }
        let mut errors = Vec::new();
        for (i, (hi, vi)) in joined.iter().enumerate() {
            for (j, (hj, vj)) in joined.iter().enumerate() {
                if i != j {
                    if let Some(actual) = ds.matrix.get(*hi, *hj) {
                        if actual > 0.0 {
                            errors.push(modified_relative_error(actual, vi.distance_to_host(vj)));
                        }
                    }
                }
            }
        }
        let cdf = Cdf::new(errors);
        println!(
            "  k={k:<3} median {:.4}  p90 {:.4}",
            cdf.median(),
            cdf.p90()
        );
    }
}

fn nmf_ablation() {
    println!("\n== NMF iteration/init ablation (NLANR-like, d=10) ==");
    let ds = Dataset::Nlanr.generate(seed());
    let norm = ds.matrix.values().frobenius_norm();
    for init in [NmfInit::Svd, NmfInit::Random] {
        for iterations in [25usize, 50, 100, 200, 400] {
            let cfg = NmfConfig {
                iterations,
                init,
                ..NmfConfig::new(10)
            };
            let fit = nmf::fit(&ds.matrix, cfg).expect("nmf fit");
            let rel = fit.error_trace.last().unwrap().sqrt() / norm;
            println!("  init={init:?} iters={iterations:<4} relative-F error {rel:.5}");
        }
    }
}

fn weighting_ablation() {
    use ides_mf::als::{self, AlsConfig, WeightScheme};
    use ides_mf::metrics::reconstruction_errors;
    println!("\n== error-weighting ablation: ALS objective (NLANR-like, d=10) ==");
    println!("  (uniform = paper's Eq. 7; inverse-square = GNP's relative objective)");
    let ds = Dataset::Nlanr.generate(seed());
    for (label, weights) in [
        ("uniform (Eq. 7)", WeightScheme::Uniform),
        ("1/D", WeightScheme::InverseDistance),
        ("1/D^2 (relative)", WeightScheme::InverseSquare),
    ] {
        let fit = als::fit(
            &ds.matrix,
            AlsConfig {
                weights,
                sweeps: 25,
                ..AlsConfig::new(10)
            },
        )
        .expect("als fit");
        let cdf = Cdf::new(reconstruction_errors(&fit.model, &ds.matrix));
        println!(
            "  {label:<18} median rel-err {:.4}  p90 {:.4}",
            cdf.median(),
            cdf.p90()
        );
    }
}

fn main() {
    println!("# Design-choice ablations (DESIGN.md §5)");
    match arg1().as_deref() {
        Some("solver") => solver_ablation(),
        Some("landmarks") => landmark_ablation(),
        Some("relaxed") => relaxed_ablation(),
        Some("nmf") => nmf_ablation(),
        Some("weighting") => weighting_ablation(),
        Some(other) => {
            eprintln!("unknown ablation {other:?}");
            std::process::exit(2);
        }
        None => {
            solver_ablation();
            landmark_ablation();
            relaxed_ablation();
            nmf_ablation();
            weighting_ablation();
        }
    }
}
