//! Relaxed-architecture chain joins (§5.2 extension experiment).
//!
//! The relaxed architecture lets an ordinary host join through *any* `k`
//! nodes with known vectors — landmarks or previously joined hosts. That
//! raises a systems question the paper leaves open: does accuracy degrade
//! as joins chain deeper (error accumulating through hosts that joined
//! through hosts that joined ...)?
//!
//! This experiment joins hosts one at a time. Each host measures `k`
//! reference nodes sampled uniformly from the landmarks plus everyone who
//! joined before it, then reports prediction error grouped by join depth
//! (depth 0 = used landmarks only; depth d = deepest reference had depth
//! d−1).

use ides::projection::HostVectors;
use ides::system::{split_landmarks, IdesConfig, InformationServer};
use ides_experiments::{seed, Dataset};
use ides_linalg::Matrix;
use ides_mf::metrics::{modified_relative_error, Cdf};
use rand::seq::SliceRandom;
use rand::SeedableRng;

const K: usize = 16;
const DIM: usize = 8;

fn main() {
    println!("# Chain joins: prediction error vs join depth (NLANR-like, k = {K}, d = {DIM})");
    let ds = Dataset::Nlanr.generate(seed());
    let data = &ds.matrix;
    let n = data.rows();
    let m = 20.min(n - 2);
    let (landmarks, ordinary) = split_landmarks(n, m, seed());
    let lm = data.submatrix(&landmarks, &landmarks);
    let server = InformationServer::build(&lm, IdesConfig::new(DIM)).expect("server build");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed() ^ 0xC4A1);

    // Reference pool: (host index in data, vectors, depth).
    let mut pool: Vec<(usize, HostVectors, usize)> = landmarks
        .iter()
        .enumerate()
        .map(|(i, &h)| (h, server.landmark_vectors(i), 0usize))
        .collect();

    let mut joined: Vec<(usize, HostVectors, usize)> = Vec::new();
    let mut order = ordinary.clone();
    order.shuffle(&mut rng);
    for &h in &order {
        // Sample k distinct references from the pool.
        let mut idx: Vec<usize> = (0..pool.len()).collect();
        idx.shuffle(&mut rng);
        idx.truncate(K.min(pool.len()));
        let refs: Vec<HostVectors> = idx.iter().map(|&i| pool[i].1.clone()).collect();
        let d_out: Vec<f64> = idx
            .iter()
            .map(|&i| data.get(h, pool[i].0).expect("complete matrix"))
            .collect();
        let d_in: Vec<f64> = idx
            .iter()
            .map(|&i| data.get(pool[i].0, h).expect("complete matrix"))
            .collect();
        let depth = idx.iter().map(|&i| pool[i].2).max().unwrap_or(0) + 1;
        match server.join_via_references(&refs, &d_out, &d_in) {
            Ok(v) => {
                pool.push((h, v.clone(), depth));
                joined.push((h, v, depth));
            }
            Err(e) => {
                eprintln!("join failed for host {h}: {e}");
            }
        }
    }

    // Errors on ordinary pairs, grouped by the max depth of the two hosts.
    let max_depth = joined.iter().map(|&(_, _, d)| d).max().unwrap_or(1);
    let mut by_depth: Vec<Vec<f64>> = vec![Vec::new(); max_depth + 1];
    for (i, (hi, vi, di)) in joined.iter().enumerate() {
        for (j, (hj, vj, dj)) in joined.iter().enumerate() {
            if i == j {
                continue;
            }
            if let Some(actual) = data.get(*hi, *hj) {
                if actual > 0.0 {
                    let depth = (*di).max(*dj);
                    by_depth[depth].push(modified_relative_error(actual, vi.distance_to_host(vj)));
                }
            }
        }
    }
    println!("# depth pairs median p90");
    for (depth, errs) in by_depth.iter().enumerate() {
        if errs.is_empty() {
            continue;
        }
        let cdf = Cdf::new(errs.clone());
        println!("{depth} {} {:.4} {:.4}", cdf.len(), cdf.median(), cdf.p90());
    }

    // Baseline: everyone joins through all landmarks directly.
    let mut direct = Vec::new();
    for &h in &ordinary {
        let d_out: Vec<f64> = landmarks
            .iter()
            .map(|&l| data.get(h, l).expect("complete"))
            .collect();
        let d_in: Vec<f64> = landmarks
            .iter()
            .map(|&l| data.get(l, h).expect("complete"))
            .collect();
        if let Ok(v) = server.join(&d_out, &d_in) {
            direct.push((h, v));
        }
    }
    let mut errs = Vec::new();
    for (i, (hi, vi)) in direct.iter().enumerate() {
        for (j, (hj, vj)) in direct.iter().enumerate() {
            if i != j {
                if let Some(actual) = data.get(*hi, *hj) {
                    if actual > 0.0 {
                        errs.push(modified_relative_error(actual, vi.distance_to_host(vj)));
                    }
                }
            }
        }
    }
    let cdf = Cdf::new(errs);
    println!(
        "# baseline (all {m} landmarks measured directly): median {:.4} p90 {:.4}",
        cdf.median(),
        cdf.p90()
    );
    let _ = Matrix::zeros(0, 0);
}
