//! Figure 7: median prediction error vs fraction of unobserved landmarks,
//! IDES/SVD, with 20 and 50 landmarks.
//!
//! Usage: `fig7 [nlanr|p2psim]` (default: both).
//!
//! Expected shape (paper): with 20 landmarks (close to 2·d) accuracy is
//! sensitive to failures; with 50 landmarks, losing even 40 % of them has
//! little impact — the headline robustness result of §6.2.

use crossbeam::thread;

use ides::eval::evaluate_ides_with_failures;
use ides::system::{split_landmarks, IdesConfig};
use ides_experiments::{arg1, print_summary, seed, Dataset};

fn run(dataset: Dataset, dim: usize) {
    let ds = dataset.generate(seed());
    print_summary(&ds);
    let data = if ds.matrix.is_complete() {
        ds.matrix.clone()
    } else {
        ds.matrix.filter_complete().expect("square dataset").0
    };
    let n = data.rows();
    let fractions: Vec<f64> = (0..=8).map(|k| k as f64 * 0.1).collect();

    let landmark_counts: Vec<usize> = [20usize, 50].into_iter().filter(|&m| m + 2 < n).collect();
    let series: Vec<(usize, Vec<(f64, f64)>)> = thread::scope(|s| {
        let handles: Vec<_> = landmark_counts
            .iter()
            .map(|&m| {
                let data = &data;
                let fractions = &fractions;
                s.spawn(move |_| {
                    let (landmarks, ordinary) = split_landmarks(n, m, seed());
                    let points: Vec<(f64, f64)> = fractions
                        .iter()
                        .map(|&f| {
                            let r = evaluate_ides_with_failures(
                                data,
                                &landmarks,
                                &ordinary,
                                IdesConfig::new(dim),
                                f,
                                seed() ^ (m as u64) << 8,
                            )
                            .expect("failure evaluation");
                            (f, r.into_cdf().median())
                        })
                        .collect();
                    (m, points)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep thread"))
            .collect()
    })
    .expect("scoped threads");

    for (m, points) in series {
        println!(
            "\n# series: {} / {} landmarks, d={}",
            dataset.name(),
            m,
            dim
        );
        println!("# unobserved_fraction median_relative_error");
        for (f, median) in points {
            println!("{f:.1} {median:.5}");
        }
    }
}

fn main() {
    println!("# Figure 7: median relative error vs fraction of unobserved landmarks (IDES/SVD)");
    match arg1().as_deref() {
        Some(name) => {
            let ds = ides_experiments::Dataset::parse(name).unwrap_or_else(|| {
                eprintln!("unknown dataset {name:?}; expected nlanr or p2psim");
                std::process::exit(2);
            });
            let dim = if ds == Dataset::P2pSim { 10 } else { 8 };
            run(ds, dim);
        }
        None => {
            run(Dataset::Nlanr, 8); // paper: d = 8 on NLANR
            run(Dataset::P2pSim, 10); // paper: d = 10 on P2PSim
        }
    }
}
