//! Missing-data extension experiment (not a paper figure; extends §4.2).
//!
//! The paper's main argument for NMF is its masked update rules (Eqs. 8–9)
//! that tolerate missing matrix entries, where SVD must drop hosts. This
//! experiment quantifies that: hide a growing random fraction of the
//! entries of an NLANR-like matrix, fit masked NMF and ALS on the
//! survivors, and measure reconstruction error separately on the
//! *observed* entries (fit quality) and the *hidden* ones (imputation /
//! matrix completion quality).

use ides_experiments::{seed, Dataset};
use ides_linalg::Matrix;
use ides_mf::metrics::{modified_relative_error, Cdf};
use ides_mf::model::DistanceEstimator;
use ides_mf::{als, nmf};
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn main() {
    let dim = 10;
    println!("# Missing-data extension: masked NMF / ALS vs fraction of hidden entries, d = {dim}");
    let ds = Dataset::Nlanr.generate(seed());
    let full = &ds.matrix;
    let n = full.rows();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed() ^ 0xDA7A);

    // Off-diagonal cells, shuffled once; each fraction hides a prefix.
    let mut cells: Vec<(usize, usize)> = (0..n)
        .flat_map(|i| (0..n).map(move |j| (i, j)))
        .filter(|&(i, j)| i != j)
        .collect();
    cells.shuffle(&mut rng);

    println!(
        "# fraction_hidden  nmf_obs_median nmf_hidden_median  als_obs_median als_hidden_median"
    );
    for hidden_pct in [0usize, 5, 10, 20, 30, 40, 50] {
        let hidden_count = cells.len() * hidden_pct / 100;
        let hidden = &cells[..hidden_count];
        let mut mask = Matrix::filled(n, n, 1.0);
        let mut values = full.values().clone();
        for &(i, j) in hidden {
            mask[(i, j)] = 0.0;
            values[(i, j)] = 0.0;
        }
        let masked = ides_datasets::DistanceMatrix::with_mask("masked", values, mask)
            .expect("valid masked matrix");

        let nmf_fit = nmf::fit(
            &masked,
            nmf::NmfConfig {
                iterations: 150,
                ..nmf::NmfConfig::new(dim)
            },
        )
        .expect("nmf fit");
        let als_fit = als::fit(
            &masked,
            als::AlsConfig {
                sweeps: 25,
                ..als::AlsConfig::new(dim)
            },
        )
        .expect("als fit");

        let score = |model: &dyn DistanceEstimator| -> (f64, f64) {
            let mut obs = Vec::new();
            let mut hid = Vec::new();
            for i in 0..n {
                for j in 0..n {
                    if i == j {
                        continue;
                    }
                    let actual = full.get(i, j).expect("full matrix");
                    if actual <= 0.0 {
                        continue;
                    }
                    let err = modified_relative_error(actual, model.estimate(i, j));
                    if masked.get(i, j).is_some() {
                        obs.push(err);
                    } else {
                        hid.push(err);
                    }
                }
            }
            (
                Cdf::new(obs).median(),
                if hid.is_empty() {
                    f64::NAN
                } else {
                    Cdf::new(hid).median()
                },
            )
        };
        let (nmf_obs, nmf_hid) = score(&nmf_fit.model);
        let (als_obs, als_hid) = score(&als_fit.model);
        println!(
            "{:.2} {nmf_obs:.4} {nmf_hid:.4} {als_obs:.4} {als_hid:.4}",
            hidden_pct as f64 / 100.0
        );
    }
}
