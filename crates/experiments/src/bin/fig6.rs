//! Figure 6: CDF of *prediction* error (distances between ordinary hosts
//! that never measured each other), d = 8, comparing IDES/SVD, IDES/NMF,
//! ICS, and GNP.
//!
//! Usage: `fig6 [gnp|nlanr|p2psim]` (default: all three).
//!
//! * (a) GNP-like set: 15 landmarks; ordinary hosts are the remaining 4
//!   plus the 869-host AGNP-like probe population; evaluated on 869×4
//!   pairs. The paper notes GNP wins narrowly on this (atypical) set.
//! * (b) NLANR-like: 20 random landmarks, 90×90 ordinary pairs — IDES best
//!   (paper: median 0.03, p90 ≈ 0.23 for IDES/SVD).
//! * (c) P2PSim-like: 20 random landmarks, 1123×1123 pairs — harder for
//!   everyone, IDES still best.

use ides::eval::{evaluate_gnp, evaluate_ics, evaluate_ides, PredictionResult};
use ides::system::{split_landmarks, IdesConfig};
use ides_datasets::DistanceMatrix;
use ides_experiments::{arg1, print_cdf, print_summary, scaled, seed, Dataset};
use ides_linalg::Matrix;
use ides_mf::gnp::GnpConfig;
use ides_mf::metrics::modified_relative_error;

const DIM: usize = 8;

fn print_all(dataset: &str, results: &[(&str, PredictionResult)]) {
    for (label, r) in results {
        print_cdf(&format!("{dataset} / {label}"), &r.cdf(), 100);
    }
}

fn run_square(dataset: Dataset, m: usize) {
    let ds = dataset.generate(seed());
    print_summary(&ds);
    let data = if ds.matrix.is_complete() {
        ds.matrix.clone()
    } else {
        ds.matrix.filter_complete().expect("square dataset").0
    };
    let n = data.rows();
    let m = m.min(n.saturating_sub(2));
    let (landmarks, ordinary) = split_landmarks(n, m, seed());
    println!(
        "# {}: {} landmarks, {} ordinary hosts",
        dataset.name(),
        m,
        ordinary.len()
    );

    let svd = evaluate_ides(&data, &landmarks, &ordinary, IdesConfig::new(DIM)).expect("IDES/SVD");
    let nmf = evaluate_ides(&data, &landmarks, &ordinary, IdesConfig::nmf(DIM)).expect("IDES/NMF");
    let ics = evaluate_ics(&data, &landmarks, &ordinary, DIM).expect("ICS");
    let gnp = evaluate_gnp(&data, &landmarks, &ordinary, GnpConfig::new(DIM)).expect("GNP");
    print_all(
        dataset.name(),
        &[
            ("IDES/SVD", svd),
            ("IDES/NMF", nmf),
            ("ICS", ics),
            ("GNP", gnp),
        ],
    );
}

/// Figure 6(a): the composite GNP + AGNP setting. The AGNP-like topology
/// carries 19 "GNP" hosts (the columns) and 869 probe hosts (the rows);
/// 15 GNP hosts serve as landmarks, the other 4 plus the probe population
/// join as ordinary hosts, and prediction is scored on (probe, gnp-host)
/// pairs.
fn run_gnp_composite() {
    use ides_netsim::measurement::{measure_submatrix, MeasurementParams};
    use rand::SeedableRng;

    let rows = scaled(869);
    let cols = 19;
    let ds = ides_datasets::generators::agnp_like(rows, cols, seed()).expect("agnp generation");
    print_summary(&ds);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed() ^ 0xF166);

    let landmark_hosts: Vec<usize> = ds.col_hosts[..15].to_vec();
    let eval_hosts: Vec<usize> = ds.col_hosts[15..].to_vec(); // the 4 held-out GNP hosts
    let probe_hosts: Vec<usize> = ds.row_hosts.clone();
    let mparams = MeasurementParams::nlanr_style();

    // Landmark matrix.
    let (lmv, lmm) = measure_submatrix(
        &ds.topology,
        &landmark_hosts,
        &landmark_hosts,
        &mparams,
        &mut rng,
    );
    let lm = DistanceMatrix::with_mask("gnp-landmarks", lmv, lmm).expect("landmark matrix");

    // Ordinary-host rows (probes and the 4 held-out hosts) to landmarks.
    let mut ordinary: Vec<usize> = probe_hosts.clone();
    ordinary.extend_from_slice(&eval_hosts);
    let (ov, _om) = measure_submatrix(&ds.topology, &ordinary, &landmark_hosts, &mparams, &mut rng);

    // Ground truth for the evaluated (probe, held-out) pairs.
    let truth = Matrix::from_fn(probe_hosts.len(), eval_hosts.len(), |i, j| {
        ds.topology.host_rtt(probe_hosts[i], eval_hosts[j])
    });

    type Joiner<'a> = dyn Fn(&[f64]) -> Vec<f64> + 'a;
    let run_system = |label: &str, join: &Joiner<'_>, dist: &dyn Fn(&[f64], &[f64]) -> f64| {
        let coords: Vec<Vec<f64>> = (0..ordinary.len()).map(|i| join(ov.row(i))).collect();
        let np = probe_hosts.len();
        let mut errors = Vec::with_capacity(np * eval_hosts.len());
        for i in 0..np {
            for j in 0..eval_hosts.len() {
                let actual = truth[(i, j)];
                if actual > 0.0 {
                    let est = dist(&coords[i], &coords[np + j]);
                    errors.push(modified_relative_error(actual, est));
                }
            }
        }
        print_cdf(
            &format!("gnp / {label}"),
            &ides_mf::metrics::Cdf::new(errors),
            100,
        );
    };

    // IDES / SVD and NMF.
    for (label, config) in [
        ("IDES/SVD", IdesConfig::new(DIM)),
        ("IDES/NMF", IdesConfig::nmf(DIM)),
    ] {
        let server = ides::system::InformationServer::build(&lm, config).expect("server build");
        let join = |row: &[f64]| -> Vec<f64> {
            let v = server.join(row, row).expect("host join");
            let mut packed = v.outgoing;
            packed.extend_from_slice(&v.incoming);
            packed
        };
        let dist = |a: &[f64], b: &[f64]| -> f64 {
            // a's outgoing (first half) · b's incoming (second half).
            let d = a.len() / 2;
            a[..d].iter().zip(b[d..].iter()).map(|(&x, &y)| x * y).sum()
        };
        run_system(label, &join, &dist);
    }

    // ICS.
    {
        let model = ides_mf::lipschitz::LipschitzPca::fit(&lm, DIM).expect("ICS fit");
        let join = |row: &[f64]| -> Vec<f64> { model.embed(row).expect("ICS embed") };
        let dist = |a: &[f64], b: &[f64]| ides_mf::lipschitz::LipschitzPca::distance(a, b);
        run_system("ICS", &join, &dist);
    }

    // GNP.
    {
        let model = ides_mf::gnp::GnpModel::fit_landmarks(&lm, GnpConfig::new(DIM))
            .expect("GNP landmark fit");
        let counter = std::cell::Cell::new(0u64);
        let join = |row: &[f64]| -> Vec<f64> {
            counter.set(counter.get() + 1);
            model
                .fit_host(row, GnpConfig::new(DIM), counter.get())
                .expect("GNP host fit")
        };
        let dist = |a: &[f64], b: &[f64]| ides_mf::gnp::GnpModel::distance(a, b);
        run_system("GNP", &join, &dist);
    }
}

fn main() {
    println!("# Figure 6: CDF of prediction error, d = {DIM}");
    match arg1().as_deref() {
        Some("gnp") => run_gnp_composite(),
        Some("nlanr") => run_square(Dataset::Nlanr, 20),
        Some("p2psim") => run_square(Dataset::P2pSim, 20),
        Some(other) => {
            eprintln!("unknown dataset {other:?}; expected gnp, nlanr or p2psim");
            std::process::exit(2);
        }
        None => {
            run_gnp_composite();
            run_square(Dataset::Nlanr, 20);
            run_square(Dataset::P2pSim, 20);
        }
    }
}
