//! Streaming coordinate maintenance under drift: accuracy vs staleness.
//!
//! The long-running-service experiment behind the `ides::streaming`
//! subsystem. A ±20 % diurnal drift is layered over an NLANR-like
//! topology; `netsim::drift::DriftStream` turns it into an epoch-stamped
//! stream of changed measurements delivered through the discrete-event
//! queue. Three maintenance policies track the same 60 ordinary hosts over
//! 48 epochs:
//!
//! * **stale** — join once at epoch 0, never update (the paper's
//!   deployment assumption, lower bound on cost and accuracy);
//! * **streaming** — `StreamingServer::apply_epoch` per epoch: rank-1
//!   absorption of changed landmarks below the staleness threshold, warm
//!   2-sweep ALS refresh above it, and re-joins of only the hosts whose
//!   own measurements moved;
//! * **fresh** — cold refit of the landmark model plus a re-join of every
//!   host, every epoch (upper bound on cost, the accuracy reference).
//!
//! Prints one row per epoch (median modified relative error per policy)
//! plus a cost/accuracy summary; `--json` emits the summary as a JSON
//! object — `scripts/run_benches.sh` merges it into the committed
//! `BENCH_NNNN.json` so the accuracy-vs-staleness claim travels with the
//! timing trajectory.

use std::collections::BTreeSet;

use ides::streaming::{
    EpochUpdate, MeasurementDelta, StalenessPolicy, StreamingServer, UpdateQueue,
};
use ides::BatchHostVectors;
use ides_datasets::DistanceMatrix;
use ides_experiments::seed;
use ides_linalg::Matrix;
use ides_mf::metrics::{modified_relative_error, Cdf};
use ides_netsim::drift::{DriftModel, DriftStream};
use ides_netsim::event::EventQueue;

const LANDMARKS: usize = 20;
const HOSTS: usize = 80;
const DIM: usize = 8;
const AMPLITUDE: f64 = 0.2;

fn main() {
    let mut epochs = 48usize;
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json = true,
            "--epochs" => {
                epochs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--epochs N");
            }
            other => panic!("unknown argument {other}"),
        }
    }

    let ds = ides_datasets::generators::nlanr_like(HOSTS, seed()).expect("dataset");
    let topo = &ds.topology;
    let drift = DriftModel::new(AMPLITUDE, 24.0, seed());
    // Emit a pair only when it moved ≥ 4 % since last reported — the
    // "meaningful change" filter a real measurement mesh would apply.
    let mut stream = DriftStream::new(topo, drift.clone(), ds.row_hosts.clone(), 1.0, 0.04);

    let landmarks: Vec<usize> = (0..LANDMARKS).collect();
    let ordinary: Vec<usize> = (LANDMARKS..HOSTS).collect();
    let full0 = stream.initial_matrix();
    let lm0 = DistanceMatrix::full(
        "lm0",
        Matrix::from_fn(LANDMARKS, LANDMARKS, |a, b| full0[(a, b)]),
    )
    .expect("landmark matrix");

    let policy = StalenessPolicy {
        deviation_threshold: 0.05,
        refresh_row_fraction: 0.25,
        sweep_budget: 2,
        ridge: 0.0,
        ..StalenessPolicy::default()
    };
    let mut streaming = StreamingServer::new(&lm0, DIM, policy).expect("streaming server");

    // Current measured host-to-landmark rows (symmetric topology: one
    // matrix serves both directions).
    let mut meas = Matrix::from_fn(ordinary.len(), LANDMARKS, |h, l| {
        full0[(ordinary[h], landmarks[l])]
    });
    let mut coords_streaming = BatchHostVectors::new();
    streaming
        .join_batch_cached(&meas, &meas, &mut coords_streaming)
        .expect("initial join");
    let coords_stale = coords_streaming.clone();
    // Measurement rows as of each host's last join: the per-host staleness
    // signal (a host re-joins only when its own rows drift past the same
    // deviation threshold the landmark slab uses).
    let mut joined_meas = meas.clone();

    let mut events: EventQueue<ides_netsim::drift::EpochBatch> = EventQueue::new();
    stream.schedule_into(&mut events, epochs);
    let mut queue = UpdateQueue::new();

    println!(
        "# Streaming maintenance under ±{:.0}% drift (NLANR-like, {} landmarks, {} hosts, d={DIM})",
        AMPLITUDE * 100.0,
        LANDMARKS,
        ordinary.len()
    );
    println!(
        "# policy: refresh at deviation > {}, {} warm sweeps, rejoin affected hosts only",
        policy.deviation_threshold, policy.sweep_budget
    );
    println!("# epoch deviation tier rejoined stale_med streaming_med fresh_med");

    let score = |coords: &BatchHostVectors, epoch: f64| -> f64 {
        let mut errs = Vec::new();
        for (a, &ha) in ordinary.iter().enumerate() {
            for (b, &hb) in ordinary.iter().enumerate() {
                if a == b {
                    continue;
                }
                let actual = drift.rtt(topo, ds.row_hosts[ha], ds.row_hosts[hb], epoch);
                if actual > 0.0 {
                    errs.push(modified_relative_error(actual, coords.distance(a, b)));
                }
            }
        }
        Cdf::new(errs).median()
    };

    let (mut stale_sum, mut streaming_sum, mut fresh_sum) = (0.0, 0.0, 0.0);
    let mut rejoined_total = 0usize;
    let mut scored = 0usize;
    while let Some((now, batch)) = events.pop() {
        // Route the landmark-slab deltas through the epoch queue; host
        // measurement changes update the local measurement rows.
        let mut deltas = Vec::new();
        let mut touched: BTreeSet<usize> = BTreeSet::new();
        for s in &batch.samples {
            let (lo, hi) = (s.i, s.j);
            if hi < LANDMARKS {
                deltas.push(MeasurementDelta {
                    from: lo,
                    to: hi,
                    rtt: s.rtt,
                });
                deltas.push(MeasurementDelta {
                    from: hi,
                    to: lo,
                    rtt: s.rtt,
                });
            } else if lo < LANDMARKS {
                let h = hi - LANDMARKS;
                meas[(h, lo)] = s.rtt;
                touched.insert(h);
            } // ordinary-ordinary pairs are not measured by the service
        }
        queue.push(EpochUpdate {
            epoch: batch.epoch,
            deltas,
        });

        let update = queue.pop_ready(now).expect("scheduled update is ready");
        let outcome = streaming.apply_epoch(&update).expect("apply epoch");
        // A refresh moves every landmark vector: all hosts must re-join.
        // Otherwise a touched host re-joins only once its own measurement
        // row has drifted past the deviation threshold since its last join.
        let rejoin: Vec<usize> = if outcome.refreshed {
            (0..ordinary.len()).collect()
        } else {
            touched
                .iter()
                .copied()
                .filter(|&h| {
                    let (mut dev, mut cnt) = (0.0, 0usize);
                    for l in 0..LANDMARKS {
                        let base = joined_meas[(h, l)];
                        if base > 0.0 {
                            dev += (meas[(h, l)] - base).abs() / base;
                            cnt += 1;
                        }
                    }
                    cnt > 0 && dev / cnt as f64 > policy.deviation_threshold
                })
                .collect()
        };
        streaming
            .rejoin_affected(&rejoin, &meas, &meas, &mut coords_streaming)
            .expect("rejoin");
        for &h in &rejoin {
            for l in 0..LANDMARKS {
                joined_meas[(h, l)] = meas[(h, l)];
            }
        }
        rejoined_total += rejoin.len();

        // Fresh control: cold fit of the drifted landmark slab + full join.
        let lm_now = DistanceMatrix::full(
            "lm",
            Matrix::from_fn(LANDMARKS, LANDMARKS, |a, b| {
                drift.rtt(topo, ds.row_hosts[a], ds.row_hosts[b], batch.epoch)
            }),
        )
        .expect("landmark matrix");
        let fresh = StreamingServer::new(&lm_now, DIM, policy).expect("fresh server");
        let mut coords_fresh = BatchHostVectors::new();
        fresh
            .join_batch_cached(&meas, &meas, &mut coords_fresh)
            .expect("fresh join");

        let s_stale = score(&coords_stale, batch.epoch);
        let s_stream = score(&coords_streaming, batch.epoch);
        let s_fresh = score(&coords_fresh, batch.epoch);
        stale_sum += s_stale;
        streaming_sum += s_stream;
        fresh_sum += s_fresh;
        scored += 1;
        println!(
            "{:5.1} {:.4} {} {:3} {:.4} {:.4} {:.4}",
            batch.epoch,
            outcome.deviation,
            if outcome.refreshed {
                "refresh"
            } else {
                "absorb "
            },
            rejoin.len(),
            s_stale,
            s_stream,
            s_fresh
        );
    }

    let n = scored.max(1) as f64;
    let (stale_mean, streaming_mean, fresh_mean) =
        (stale_sum / n, streaming_sum / n, fresh_sum / n);
    let gap = (streaming_mean - fresh_mean) / fresh_mean.max(1e-12);
    println!("#");
    println!(
        "# mean medians: stale {stale_mean:.4}  streaming {streaming_mean:.4}  fresh {fresh_mean:.4}"
    );
    println!(
        "# streaming vs fresh gap: {:.1}%  (refreshes {}, absorbed rows {}, host re-joins {} of {} possible)",
        gap * 100.0,
        streaming.refreshes(),
        streaming.absorbed(),
        rejoined_total,
        scored * ordinary.len()
    );
    if json {
        println!(
            "{{\"epochs\": {}, \"drift_amplitude\": {}, \"stale_mean_median\": {:.6}, \
             \"streaming_mean_median\": {:.6}, \"fresh_mean_median\": {:.6}, \
             \"streaming_vs_fresh_gap\": {:.6}, \"refreshes\": {}, \"absorbed_rows\": {}, \
             \"host_rejoins\": {}, \"host_rejoins_possible\": {}}}",
            scored,
            AMPLITUDE,
            stale_mean,
            streaming_mean,
            fresh_mean,
            gap,
            streaming.refreshes(),
            streaming.absorbed(),
            rejoined_total,
            scored * ordinary.len()
        );
    }
}
