//! Prints the structural statistics of all five synthetic data sets —
//! the sanity check that the substrate reproduces the phenomena the paper
//! relies on (triangle-inequality violations, asymmetry, low effective
//! rank). Not a paper figure, but the evidence behind DESIGN.md §2.

use ides_experiments::{print_summary, seed, Dataset};

fn main() {
    println!("# Data set summaries (synthetic stand-ins; see DESIGN.md §2)");
    for dataset in Dataset::all() {
        let ds = dataset.generate(seed());
        print_summary(&ds);
    }
}
