//! Coordinate staleness under network drift (deployment extension).
//!
//! IDES hosts compute their vectors once; real RTTs drift. This experiment
//! layers a smooth ±20 % diurnal drift over an NLANR-like topology, joins
//! all ordinary hosts at epoch 0, then re-scores their *cached* vectors
//! against the drifted ground truth at later epochs — with a re-joined
//! (fresh-measurement) control at each epoch. The gap between cached and
//! fresh curves is the price of staleness and tells an operator how often
//! hosts should re-join.

use ides::system::{IdesConfig, InformationServer};
use ides_datasets::DistanceMatrix;
use ides_experiments::seed;
use ides_linalg::Matrix;
use ides_mf::metrics::{modified_relative_error, Cdf};
use ides_netsim::drift::DriftModel;

fn main() {
    let dim = 8;
    println!("# Staleness: cached vs re-joined vectors under ±20% drift (NLANR-like, d={dim})");
    let ds = ides_datasets::generators::nlanr_like(80, seed()).expect("dataset");
    let topo = &ds.topology;
    let drift = DriftModel::new(0.2, 24.0, seed());

    let landmarks: Vec<usize> = (0..20).collect();
    let ordinary: Vec<usize> = (20..80).collect();

    // Landmark matrix + joins at epoch 0 (no drift yet).
    let at_epoch = |epoch: f64| -> (InformationServer, Vec<(usize, ides::HostVectors)>) {
        let lm_vals = Matrix::from_fn(20, 20, |i, j| {
            drift.rtt(topo, landmarks[i], landmarks[j], epoch)
        });
        let lm = DistanceMatrix::full("lm", lm_vals).expect("landmark matrix");
        let server = InformationServer::build(&lm, IdesConfig::new(dim)).expect("server");
        let joined = ordinary
            .iter()
            .map(|&h| {
                let row: Vec<f64> = landmarks
                    .iter()
                    .map(|&l| drift.rtt(topo, h, l, epoch))
                    .collect();
                (h, server.join(&row, &row).expect("join"))
            })
            .collect();
        (server, joined)
    };

    let (_, cached) = at_epoch(0.0);

    println!("# epoch drift_deviation cached_median fresh_median");
    let all_hosts: Vec<usize> = (0..80).collect();
    for epoch in [0.0, 2.0, 4.0, 6.0, 9.0, 12.0, 18.0, 24.0] {
        let deviation = drift.deviation(topo, &all_hosts, epoch);
        let (_, fresh) = at_epoch(epoch);
        let score = |joined: &[(usize, ides::HostVectors)]| -> f64 {
            let mut errs = Vec::new();
            for (a, (hi, vi)) in joined.iter().enumerate() {
                for (b, (hj, vj)) in joined.iter().enumerate() {
                    if a == b {
                        continue;
                    }
                    let actual = drift.rtt(topo, *hi, *hj, epoch);
                    if actual > 0.0 {
                        errs.push(modified_relative_error(actual, vi.distance_to_host(vj)));
                    }
                }
            }
            Cdf::new(errs).median()
        };
        println!(
            "{epoch:.1} {deviation:.4} {:.4} {:.4}",
            score(&cached),
            score(&fresh)
        );
    }
}
