//! Figure 3: median reconstruction relative error vs model dimension for
//! SVD, NMF and Lipschitz+PCA, over the NLANR-like (a) and P2PSim-like (b)
//! data sets.
//!
//! Usage: `fig3 [nlanr|p2psim]` (default: both).
//!
//! Expected shape (paper): SVD and NMF nearly identical for d < 10 and
//! ~5× more accurate than Lipschitz+PCA at d = 10; SVD slightly better
//! than NMF at large d (NMF only reaches local minima); diminishing
//! returns past d ≈ 10.

use crossbeam::thread;

use ides_datasets::DistanceMatrix;
use ides_experiments::{arg1, print_summary, seed, Dataset};
use ides_linalg::svd::{svd_truncated, TruncatedSvdOptions};
use ides_mf::lipschitz::LipschitzPca;
use ides_mf::metrics::{reconstruction_errors, Cdf};
use ides_mf::nmf::{self, NmfConfig};
use ides_mf::svd_model::model_from_svd;

fn dims_for(n: usize) -> Vec<usize> {
    [1, 2, 3, 4, 5, 6, 8, 10, 14, 20, 30, 40, 60, 80, 100]
        .into_iter()
        .filter(|&d| d < n)
        .collect()
}

fn run(dataset: Dataset) {
    let ds = dataset.generate(seed());
    print_summary(&ds);
    let data = if ds.matrix.is_complete() {
        ds.matrix.clone()
    } else {
        ds.matrix.filter_complete().expect("square dataset").0
    };
    let n = data.rows();
    let dims = dims_for(n);
    let max_d = *dims.last().expect("at least one dim");

    // One wide truncated SVD serves every d (truncation nests). The
    // subspace iteration re-orthonormalizes through the blocked QR of the
    // factorization layer, and its near-full-rank fallback is the blocked
    // Golub–Kahan SVD — the same entry points the estimators use.
    let wide = svd_truncated(data.values(), max_d, TruncatedSvdOptions::default())
        .expect("svd of dataset");

    // The three method sweeps are independent — run them on scoped threads.
    let (svd_series, nmf_series, lip_series) = thread::scope(|s| {
        let svd_handle = s.spawn(|_| {
            dims.iter()
                .map(|&d| {
                    let model = model_from_svd(&wide, d);
                    (d, Cdf::new(reconstruction_errors(&model, &data)).median())
                })
                .collect::<Vec<_>>()
        });
        let nmf_handle = s.spawn(|_| {
            dims.iter()
                .map(|&d| {
                    // Large matrices: trim the budget (the SVD warm start
                    // converges in a few dozen updates) and thin the grid at
                    // large d where the curve has flattened.
                    let iterations = if n > 500 { 30 } else { 200 };
                    if n > 500 && d > 40 && d != *dims.last().expect("nonempty") {
                        return (d, f64::NAN); // skipped point, filtered below
                    }
                    let cfg = NmfConfig {
                        iterations,
                        ..NmfConfig::new(d)
                    };
                    let fit = nmf::fit(&data, cfg).expect("nmf fit");
                    (
                        d,
                        Cdf::new(reconstruction_errors(&fit.model, &data)).median(),
                    )
                })
                .filter(|&(_, v)| !v.is_nan())
                .collect::<Vec<_>>()
        });
        let lip_handle = s.spawn(|_| {
            // PCA components nest: fit once at the max dimension, truncate.
            let wide = LipschitzPca::fit(&data, max_d).expect("lipschitz fit");
            dims.iter()
                .map(|&d| {
                    let model = wide.truncate(&data, d).expect("lipschitz truncate");
                    (d, Cdf::new(reconstruction_errors(&model, &data)).median())
                })
                .collect::<Vec<_>>()
        });
        (
            svd_handle.join().expect("svd sweep"),
            nmf_handle.join().expect("nmf sweep"),
            lip_handle.join().expect("lipschitz sweep"),
        )
    })
    .expect("scoped threads");

    for (label, series) in [
        ("SVD", &svd_series),
        ("NMF", &nmf_series),
        ("Lipschitz+PCA", &lip_series),
    ] {
        println!("\n# series: {} / {}", dataset.name(), label);
        println!("# dimension median_relative_error");
        for (d, median) in series {
            println!("{d} {median:.5}");
        }
    }
    let _ = &data as &DistanceMatrix;
}

fn main() {
    println!("# Figure 3: median relative error vs dimension (SVD, NMF, Lipschitz+PCA)");
    match arg1().as_deref() {
        Some(name) => {
            let ds = Dataset::parse(name).unwrap_or_else(|| {
                eprintln!("unknown dataset {name:?}; expected nlanr or p2psim");
                std::process::exit(2);
            });
            run(ds);
        }
        None => {
            run(Dataset::Nlanr);
            run(Dataset::P2pSim);
        }
    }
}
