//! Table 1: model-build wall time for IDES/SVD, IDES/NMF, ICS and GNP over
//! the GNP-, NLANR- and P2PSim-like data sets.
//!
//! "Build" covers the landmark factorization plus joining every ordinary
//! host, i.e. everything needed before distance queries are dot products.
//!
//! Expected shape (paper): IDES and ICS complete in well under a second
//! (MatLab: 0.01–0.17 s); GNP takes minutes because Simplex Downhill
//! converges slowly. Absolute numbers differ (Rust vs MatLab, synthetic vs
//! real data); the orders-of-magnitude gap is the reproduced result.

use ides::eval::{evaluate_gnp, evaluate_ics, evaluate_ides};
use ides::system::{split_landmarks, IdesConfig};
use ides_experiments::{seed, Dataset};
use ides_mf::gnp::GnpConfig;

fn main() {
    let dim = 8;
    println!("# Table 1: model build time (landmark fit + all host joins), d = {dim}");
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>12}",
        "dataset", "IDES/SVD", "IDES/NMF", "ICS", "GNP"
    );
    for dataset in [Dataset::Gnp, Dataset::Nlanr, Dataset::P2pSim] {
        let ds = dataset.generate(seed());
        let data = if ds.matrix.is_complete() {
            ds.matrix.clone()
        } else {
            ds.matrix.filter_complete().expect("square dataset").0
        };
        let n = data.rows();
        let m = match dataset {
            Dataset::Gnp => 15.min(n - 2),
            _ => 20.min(n - 2),
        };
        let (landmarks, ordinary) = split_landmarks(n, m, seed());

        let svd = evaluate_ides(&data, &landmarks, &ordinary, IdesConfig::new(dim))
            .expect("IDES/SVD evaluation");
        let nmf = evaluate_ides(&data, &landmarks, &ordinary, IdesConfig::nmf(dim))
            .expect("IDES/NMF evaluation");
        let ics = evaluate_ics(&data, &landmarks, &ordinary, dim).expect("ICS evaluation");
        let gnp = evaluate_gnp(&data, &landmarks, &ordinary, GnpConfig::new(dim))
            .expect("GNP evaluation");

        println!(
            "{:<10} {:>11.3}s {:>11.3}s {:>11.3}s {:>11.3}s",
            dataset.name(),
            svd.build_seconds,
            nmf.build_seconds,
            ics.build_seconds,
            gnp.build_seconds
        );
        let (hosts_joined, pairs_evaluated) = (svd.hosts_joined, svd.pairs_evaluated);
        println!(
            "#   medians: SVD {:.3}  NMF {:.3}  ICS {:.3}  GNP {:.3}  ({hosts_joined} hosts joined, {pairs_evaluated} pairs)",
            svd.into_cdf().median(),
            nmf.into_cdf().median(),
            ics.into_cdf().median(),
            gnp.into_cdf().median(),
        );
    }
}
