#!/usr/bin/env bash
# Runs the criterion bench suite and snapshots the results into the next
# numbered BENCH_NNNN.json at the repo root — the perf trajectory every
# PR's kernel claims are judged against.
#
# Usage:
#   scripts/run_benches.sh             # full run, all bench targets
#   QUICK=1 scripts/run_benches.sh     # CI smoke: fewer samples, kernels only
#   BENCHES="kernels qr" scripts/run_benches.sh
#
# The vendored criterion shim writes a JSON record array per bench binary
# when CRITERION_JSON is set (see vendor/criterion); this script merges
# those arrays and adds host metadata.

set -euo pipefail
cd "$(dirname "$0")/.."

BENCHES="${BENCHES:-kernels nmf_convergence projection join_batch table1}"
if [ "${QUICK:-0}" = "1" ]; then
    BENCHES="${BENCHES_OVERRIDE:-kernels join_batch}"
    export CRITERION_QUICK=1
fi

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

for bench in $BENCHES; do
    echo "== bench: $bench" >&2
    CRITERION_JSON="$tmpdir/$bench.json" \
        cargo bench -p ides-bench --bench "$bench" >&2
done

# Next free BENCH_NNNN.json slot.
n=1
while [ -e "$(printf 'BENCH_%04d.json' "$n")" ]; do
    n=$((n + 1))
done
out="$(printf 'BENCH_%04d.json' "$n")"
if [ "${QUICK:-0}" = "1" ]; then
    out="$tmpdir/bench_smoke.json" # smoke runs don't extend the trajectory
fi

jq -n \
    --arg date "$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
    --arg host "$(uname -m) $(grep -m1 'model name' /proc/cpuinfo 2>/dev/null | cut -d: -f2- | sed 's/^ *//' || echo unknown)" \
    --arg cores "$(nproc)" \
    --arg rustc "$(rustc --version)" \
    '{date: $date, host: $host, cores: ($cores | tonumber), rustc: $rustc, benches: {}}' \
    > "$out.tmp"
for bench in $BENCHES; do
    jq --arg name "$bench" --slurpfile records "$tmpdir/$bench.json" \
        '.benches[$name] = $records[0]' "$out.tmp" > "$out.tmp2"
    mv "$out.tmp2" "$out.tmp"
done
mv "$out.tmp" "$out"
echo "wrote $out" >&2

# Surface the headline numbers: blocked vs naive matmul at 512, and the
# batched vs per-host join speedup at 500 hosts.
jq -r '.benches.kernels // [] | map(select(.group == "matmul")) |
       map({(.bench): .median_ns}) | add // {} |
       if (."blocked/512") then
         "matmul/512 speedup vs naive_ijk: \((."naive_ijk/512" / ."blocked/512") * 100 | round / 100)x, " +
         "vs seed_ikj: \((."seed_ikj/512" / ."blocked/512") * 100 | round / 100)x"
       else empty end' "$out" >&2 || true
jq -r '.benches.join_batch // [] | map(select(.group == "join_batch")) |
       map({(.bench): .median_ns}) | add // {} |
       if (."batched_qr/500") then
         "join_batch/500 speedup batched vs per-host: " +
         "qr \((."per_host_qr/500" / ."batched_qr/500") * 100 | round / 100)x, " +
         "normal_eq \((."per_host_normal_eq/500" / ."batched_normal_eq/500") * 100 | round / 100)x"
       else empty end' "$out" >&2 || true
