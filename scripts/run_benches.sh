#!/usr/bin/env bash
# Runs the criterion bench suite and snapshots the results into the next
# numbered BENCH_NNNN.json at the repo root — the perf trajectory every
# PR's kernel claims are judged against.
#
# Usage:
#   scripts/run_benches.sh             # full run, all bench targets
#   QUICK=1 scripts/run_benches.sh     # CI smoke: fewer samples, key groups
#   QUICK=1 SMOKE_OUT=bench_smoke.json scripts/run_benches.sh
#                                      # CI smoke with a stable output path
#                                      # (for scripts/check_bench.sh + the
#                                      # workflow artifact upload)
#   BENCHES="kernels qr" scripts/run_benches.sh
#
# The vendored criterion shim writes a JSON record array per bench binary
# when CRITERION_JSON is set (see vendor/criterion); this script merges
# those arrays and adds host metadata. Full runs also merge the
# streaming_update experiment's accuracy summary (--json) so the
# accuracy-vs-staleness claim travels with the timing numbers.
#
# Any failing bench binary (or one that produced no JSON) aborts the run
# with a non-zero exit *before* a snapshot is written — a partial
# BENCH_NNNN.json would silently pass the CI regression gate.

set -euo pipefail
cd "$(dirname "$0")/.."

BENCHES="${BENCHES:-kernels factor nmf_convergence projection join_batch streaming_update epoch_apply epoch_pipeline serve serve_sharded telemetry_overhead table1}"
if [ "${QUICK:-0}" = "1" ]; then
    BENCHES="${BENCHES_OVERRIDE:-kernels factor join_batch streaming_update epoch_apply epoch_pipeline serve serve_sharded telemetry_overhead}"
    export CRITERION_QUICK=1
fi

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

# shellcheck disable=SC2086  # BENCHES is a space-separated word list
for bench in $BENCHES; do
    echo "== bench: $bench" >&2
    if ! CRITERION_JSON="$tmpdir/$bench.json" \
        cargo bench -p ides-bench --bench "$bench" >&2; then
        echo "error: bench binary '$bench' failed; not snapshotting" >&2
        exit 1
    fi
    if ! [ -s "$tmpdir/$bench.json" ]; then
        echo "error: bench binary '$bench' wrote no JSON; not snapshotting" >&2
        exit 1
    fi
done

# Next free BENCH_NNNN.json slot.
n=1
while [ -e "$(printf 'BENCH_%04d.json' "$n")" ]; do
    n=$((n + 1))
done
out="$(printf 'BENCH_%04d.json' "$n")"
if [ "${QUICK:-0}" = "1" ]; then
    # Smoke runs don't extend the trajectory; SMOKE_OUT pins the path for
    # the CI regression gate and artifact upload.
    out="${SMOKE_OUT:-$tmpdir/bench_smoke.json}"
fi

jq -n \
    --arg date "$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
    --arg host "$(uname -m) $(grep -m1 'model name' /proc/cpuinfo 2>/dev/null | cut -d: -f2- | sed 's/^ *//' || echo unknown)" \
    --arg cores "$(nproc)" \
    --arg rustc "$(rustc --version)" \
    '{date: $date, host: $host, cores: ($cores | tonumber), rustc: $rustc, benches: {}}' \
    > "$out.tmp"
# shellcheck disable=SC2086  # BENCHES is a space-separated word list
for bench in $BENCHES; do
    jq --arg name "$bench" --slurpfile records "$tmpdir/$bench.json" \
        '.benches[$name] = $records[0]' "$out.tmp" > "$out.tmp2"
    mv "$out.tmp2" "$out.tmp"
done

# Full runs: attach the streaming accuracy-vs-staleness summary so the
# committed trajectory records accuracy next to the update-cost numbers.
# shellcheck disable=SC2086  # BENCHES is a space-separated word list
if [ "${QUICK:-0}" != "1" ] && printf '%s\n' $BENCHES | grep -qx streaming_update; then
    echo "== experiment: streaming_update accuracy" >&2
    if ! cargo run --release -q -p ides-experiments --bin streaming_update -- --json \
        > "$tmpdir/streaming_accuracy.txt"; then
        echo "error: streaming_update experiment failed; not snapshotting" >&2
        exit 1
    fi
    tail -n 1 "$tmpdir/streaming_accuracy.txt" > "$tmpdir/streaming_accuracy.json"
    jq --slurpfile acc "$tmpdir/streaming_accuracy.json" \
        '.streaming_accuracy = $acc[0]' "$out.tmp" > "$out.tmp2"
    mv "$out.tmp2" "$out.tmp"
fi

# Serving-engine load summary (admission speedup, p50/p99 quiescent vs
# under drift). Full runs use the serve_load experiment (4s, 500 hosts);
# QUICK smoke runs a 2-second loadgen through the CLI so the serving
# path gets end-to-end exercise in CI too.
# shellcheck disable=SC2086  # BENCHES is a space-separated word list
if printf '%s\n' $BENCHES | grep -qx serve; then
    if [ "${QUICK:-0}" = "1" ]; then
        echo "== smoke: 2-second sharded loadgen (ides-cli serve --shards 4)" >&2
        if ! cargo run --release -q -p ides-cli -- serve \
            --landmarks 64 --dim 16 --hosts 120 --shards 4 --duration-s 2 --json \
            > "$tmpdir/serving.json"; then
            echo "error: cli serve loadgen failed; not snapshotting" >&2
            exit 1
        fi
    else
        echo "== experiment: serve_load" >&2
        if ! cargo run --release -q -p ides-experiments --bin serve_load -- --json \
            > "$tmpdir/serving.json"; then
            echo "error: serve_load experiment failed; not snapshotting" >&2
            exit 1
        fi
    fi
    jq --slurpfile serving "$tmpdir/serving.json" \
        '.serving = $serving[0]' "$out.tmp" > "$out.tmp2"
    mv "$out.tmp2" "$out.tmp"
fi
mv "$out.tmp" "$out"
echo "wrote $out" >&2

# Surface the headline numbers: blocked vs naive matmul at 512, the
# batched vs per-host join speedup at 500 hosts, the per-epoch
# incremental update vs full refit at 500 hosts, and serial vs DAG epoch
# application. Every headline guards ALL the operands it divides by, so a
# partial QUICK snapshot (BENCHES_OVERRIDE with a subset of groups) never
# prints spurious `null`-arithmetic output.
jq -r '.benches.kernels // [] | map(select(.group == "matmul")) |
       map({(.bench): .median_ns}) | add // {} |
       if (."blocked/512") and (."naive_ijk/512") and (."seed_ikj/512") then
         "matmul/512 speedup vs naive_ijk: \((."naive_ijk/512" / ."blocked/512") * 100 | round / 100)x, " +
         "vs seed_ikj: \((."seed_ikj/512" / ."blocked/512") * 100 | round / 100)x" +
         (if (."blocked_scalar/512") then
            ", vs scalar kernel: \((."blocked_scalar/512" / ."blocked/512") * 100 | round / 100)x"
          else "" end)
       else empty end' "$out" >&2 || true
jq -r '.benches.kernels // [] | map(select(.group == "matmul" and .gflops)) |
       map({(.bench): .gflops}) | add // {} |
       if (."blocked/512") then
         "matmul/512 throughput: blocked \(."blocked/512" | round)" +
         (if (."blocked_scalar/512") then " GFLOPS, scalar \(."blocked_scalar/512" * 100 | round / 100)" else "" end) +
         " GFLOPS"
       else empty end' "$out" >&2 || true
jq -r '.benches.factor // [] | map(select(.group == "factor")) |
       map({(.bench): .median_ns}) | add // {} |
       if (."svd_blocked/512") and (."svd_jacobi/512") and
          (."qr_unblocked/512") and (."qr_blocked/512") and
          (."eig_jacobi/512") and (."eig_blocked/512") then
         "factor/512 speedup blocked vs unblocked: " +
         "svd \((."svd_jacobi/512" / ."svd_blocked/512") * 100 | round / 100)x, " +
         "qr \((."qr_unblocked/512" / ."qr_blocked/512") * 100 | round / 100)x, " +
         "eig \((."eig_jacobi/512" / ."eig_blocked/512") * 100 | round / 100)x"
       else empty end' "$out" >&2 || true
jq -r '.benches.join_batch // [] | map(select(.group == "join_batch")) |
       map({(.bench): .median_ns}) | add // {} |
       if (."batched_qr/500") and (."per_host_qr/500") and
          (."per_host_normal_eq/500") and (."batched_normal_eq/500") then
         "join_batch/500 speedup batched vs per-host: " +
         "qr \((."per_host_qr/500" / ."batched_qr/500") * 100 | round / 100)x, " +
         "normal_eq \((."per_host_normal_eq/500" / ."batched_normal_eq/500") * 100 | round / 100)x"
       else empty end' "$out" >&2 || true
jq -r '.benches.streaming_update // [] | map(select(.group == "streaming_update")) |
       map({(.bench): .median_ns}) | add // {} |
       if (."incremental/500") and (."full_refit/500") and (."warm_refresh/500") then
         "streaming_update/500 full refit vs incremental: \((."full_refit/500" / ."incremental/500") * 100 | round / 100)x, " +
         "vs warm refresh: \((."full_refit/500" / ."warm_refresh/500") * 100 | round / 100)x"
       else empty end' "$out" >&2 || true
jq -r 'if .streaming_accuracy then
         "streaming accuracy: streaming vs fresh gap \((.streaming_accuracy.streaming_vs_fresh_gap * 10000 | round) / 100)% " +
         "(stale \(.streaming_accuracy.stale_mean_median), streaming \(.streaming_accuracy.streaming_mean_median), fresh \(.streaming_accuracy.fresh_mean_median))"
       else empty end' "$out" >&2 || true
jq -r '.benches.serve // [] | map(select(.group == "serve")) |
       map({(.bench): .median_ns}) | add // {} |
       if (."coalesced_join/500") and (."per_request_join/500") and
          (."query_under_drift/500") and (."query_quiescent/500") then
         "serve/500 coalesced vs per-request admission: \((."per_request_join/500" / ."coalesced_join/500") * 100 | round / 100)x; " +
         "query under drift vs quiescent (median): \((."query_under_drift/500" / ."query_quiescent/500") * 100 | round / 100)x"
       else empty end' "$out" >&2 || true
jq -r 'if .serving then
         "serving: admission coalesced \(.serving.admission_speedup)x at \(.serving.admission_joiners) joiners " +
         "(\(.serving.admission_flushes) flushes); query p99 \(.serving.quiescent_p99_us)us quiescent, " +
         "\(.serving.drift_p99_us)us under drift (\(.serving.p99_drift_over_quiescent)x)"
       else empty end' "$out" >&2 || true
jq -r '.benches.serve_sharded // [] | map(select(.group == "serve_sharded")) |
       map({(.bench): .median_ns}) | add // {} |
       if (."publish_churn/1x") and (."publish_churn/10x") and
          (."qps/shards1") and (."qps/shards2") and (."qps/shards4") and (."qps/shards8") then
         "serve_sharded: publish churn at 10x hosts \((."publish_churn/10x" / ."publish_churn/1x") * 100 | round / 100)x the 1x cost; " +
         "single-core qps vs 1 shard: 2 shards \((."qps/shards1" / ."qps/shards2") * 100 | round / 100)x, " +
         "4 shards \((."qps/shards1" / ."qps/shards4") * 100 | round / 100)x, " +
         "8 shards \((."qps/shards1" / ."qps/shards8") * 100 | round / 100)x"
       else empty end' "$out" >&2 || true
jq -r '.benches.epoch_apply // [] | map(select(.group == "epoch_apply")) |
       map({(.bench): .median_ns}) | add // {} |
       if (."serial/500") and (."dag/500") and (."serial/5000") and (."dag/5000") then
         "epoch_apply DAG vs serial: " +
         "500 hosts \((."serial/500" / ."dag/500") * 100 | round / 100)x, " +
         "5000 hosts \((."serial/5000" / ."dag/5000") * 100 | round / 100)x"
       else empty end' "$out" >&2 || true
jq -r '.benches.epoch_pipeline // [] | map(select(.group == "epoch_pipeline")) |
       map({(.bench): .median_ns}) | add // {} |
       if (."barriered_localized/500") and (."pipelined_localized/500") and
          (."barriered_localized/5000") and (."pipelined_localized/5000") and
          (."barriered_global/5000") and (."pipelined_global/5000") then
         "epoch_pipeline pipelined vs barriered (localized drift): " +
         "500 hosts \((."barriered_localized/500" / ."pipelined_localized/500") * 100 | round / 100)x, " +
         "5000 hosts \((."barriered_localized/5000" / ."pipelined_localized/5000") * 100 | round / 100)x; " +
         "global drift 5000 hosts \((."barriered_global/5000" / ."pipelined_global/5000") * 100 | round / 100)x"
       else empty end' "$out" >&2 || true
jq -r '.benches.telemetry_overhead // [] | map(select(.group == "telemetry_overhead")) |
       map({(.bench): .median_ns}) | add // {} |
       if (."query_disabled/500") and (."query_instrumented/500") then
         "telemetry overhead: instrumented query at \((."query_disabled/500" / ."query_instrumented/500") * 100 | round / 100)x disabled throughput " +
         "(disabled \(."query_disabled/500" | round)ns, instrumented \(."query_instrumented/500" | round)ns median)"
       else empty end' "$out" >&2 || true
jq -r 'if (.serving.epoch_plan_epochs // 0) > 0 then
         "serving epoch plans: \(.serving.epoch_plan_epochs) executed, " +
         "mean width \((.serving.epoch_plan_mean_width * 10 | round) / 10) " +
         "(max \(.serving.epoch_plan_max_width)), " +
         "critical path \(.serving.epoch_plan_critical_path) over \(.serving.epoch_plan_groups) groups"
       else empty end' "$out" >&2 || true
