#!/usr/bin/env bash
# CI bench-regression gate: compares a QUICK smoke run's key bench groups
# against the last committed BENCH_NNNN.json and fails on a >25 %
# regression.
#
# Usage:
#   scripts/check_bench.sh SMOKE_JSON [BASELINE_JSON]
#
#   SMOKE_JSON     output of `QUICK=1 SMOKE_OUT=... scripts/run_benches.sh`
#   BASELINE_JSON  defaults to the highest-numbered committed BENCH_*.json
#
# What is gated: the *within-group speedup ratios* of the key groups —
#   matmul/512           blocked vs seed_ikj
#   matmul/512           blocked (dispatched SIMD) vs blocked_scalar
#   factor/512           blocked (Golub-Kahan) SVD vs one-sided Jacobi
#   join_batch/500       batched_qr vs per_host_qr
#   streaming_update/500 incremental update vs full refit
#   serve/500            coalesced vs per-request admission
#   serve_sharded        publish churn at 10x hosts <= MAX_PUBLISH_GROWTH
#                        (default 2.0) x the 1x cost — the chunk-tree
#                        publish-cost-independence claim — and each
#                        sharded single-core qps >= MIN_SHARD_QPS_RATIO
#                        (default 0.7) x the 1-shard qps (per-query cost
#                        must not grow with shard count; multi-core
#                        scaling needs cores this runner may not have)
#   epoch_apply          DAG epoch application >= MIN_DAG_RATIO (default
#                        0.9) x serial at 500 and 5000 hosts — on the
#                        single-core CI runner parallel planning must cost
#                        (almost) nothing, mirroring the sharded-qps
#                        honesty note
#   epoch_pipeline       pipelined epoch batches >= MIN_PIPELINE_RATIO
#                        (default 0.6) x barriered on localized drift at
#                        500 and 5000 hosts. 500 sits below the
#                        min_pipeline_hosts work clamp (the auto policy
#                        runs it barriered -> parity by construction);
#                        5000 engages the worker — >= 1.0 on multi-core
#                        runners (set MIN_PIPELINE_RATIO=1.0 there), ~1x
#                        minus the hand-off on single-core (same honesty
#                        note as above). The 0.6 default sits below the
#                        +-30 % run-to-run swing a loaded single-core
#                        runner shows on these sub-10 ms pairs, so it
#                        catches only structural regressions
#   telemetry_overhead   instrumented query path >= MIN_TELEMETRY_RATIO
#                        (default 0.9) x disabled-telemetry throughput —
#                        the observability subsystem's <= 10 % overhead
#                        budget
# Ratios are used instead of raw medians because CI runners and the
# machines that commit BENCH_*.json have different CPUs: absolute
# nanoseconds are not comparable across hosts, but "how much faster is the
# optimized path than its in-process control" is. A key group present in
# the baseline but missing (or ratio-regressed beyond MAX_REGRESSION_PCT,
# default 25) in the smoke run fails the job; a within-run-gated group
# missing from the smoke run fails it too (a renamed bench must not
# un-gate itself).

set -euo pipefail
cd "$(dirname "$0")/.."

smoke="${1:?usage: check_bench.sh SMOKE_JSON [BASELINE_JSON]}"
# `ls` exits non-zero when no snapshot exists; don't let set -e/pipefail
# turn "no baseline" into an opaque abort — that case is a clean skip.
# shellcheck disable=SC2012  # fixed BENCH_NNNN names: no spaces/controls to mangle
baseline="${2:-$({ ls BENCH_[0-9][0-9][0-9][0-9].json 2>/dev/null || true; } | sort | tail -n 1)}"
max_pct="${MAX_REGRESSION_PCT:-25}"

if [ -z "$baseline" ]; then
    echo "no committed BENCH_*.json baseline found; nothing to gate" >&2
    exit 0
fi
echo "gate: $smoke vs baseline $baseline (max ratio regression ${max_pct}%)" >&2

# median_ns FILE GROUP BENCH -> number or "null"
median_ns() {
    jq -r --arg g "$2" --arg b "$3" \
        '[.benches[] | .[]? | select(.group == $g and .bench == $b)] |
         first | .median_ns // "null"' "$1"
}

fail=0
# check GROUP FAST_BENCH SLOW_BENCH LABEL
check() {
    local group="$1" fast="$2" slow="$3" label="$4"
    local bf bs sf ss
    bf="$(median_ns "$baseline" "$group" "$fast")"
    bs="$(median_ns "$baseline" "$group" "$slow")"
    sf="$(median_ns "$smoke" "$group" "$fast")"
    ss="$(median_ns "$smoke" "$group" "$slow")"
    if [ "$bf" = "null" ] || [ "$bs" = "null" ]; then
        echo "  skip $label: not in baseline" >&2
        return
    fi
    if [ "$sf" = "null" ] || [ "$ss" = "null" ]; then
        echo "  FAIL $label: present in baseline but missing from smoke run" >&2
        fail=1
        return
    fi
    # speedup = slow/fast; regression when the smoke speedup falls below
    # (1 - max_pct/100) of the baseline speedup.
    local verdict
    verdict="$(jq -n --argjson bf "$bf" --argjson bs "$bs" \
                     --argjson sf "$sf" --argjson ss "$ss" \
                     --argjson pct "$max_pct" '
        ($bs / $bf) as $base | ($ss / $sf) as $now |
        {base: (($base * 100 | round) / 100),
         now: (($now * 100 | round) / 100),
         ok: ($now >= $base * (1 - $pct / 100))} |
        "\(if .ok then "ok  " else "FAIL" end) speedup \(.now)x vs baseline \(.base)x"')"
    verdict="${verdict%\"}"; verdict="${verdict#\"}"
    echo "  $verdict  $label" >&2
    case "$verdict" in FAIL*) fail=1 ;; esac
}

# check_abs GROUP FAST_BENCH SLOW_BENCH MIN_SPEEDUP LABEL
#
# Absolute within-smoke-run ratio gate, not baseline-relative: used for
# the SIMD-vs-scalar kernel check, where the *generation* of SIMD ISA
# (AVX2 vs AVX-512) differs across hosts and a baseline recorded on one
# can't calibrate another. Both benches run in the same process on the
# same host, so their ratio is host-independent in the way that matters:
# "the runtime dispatcher picked a vector kernel and it pays off". A
# missing fast/slow pair is a hard failure: every within-run-gated group
# ships in the smoke bench set, so absence means a rename or a dropped
# registration, not an older snapshot. On a runner whose CPU lacks
# AVX2+FMA the dispatcher falls back to scalar and the ratio is ~1x; set
# MIN_SIMD_SPEEDUP=0 there to disable that one floor (the group must
# still be present).
check_abs() {
    local group="$1" fast="$2" slow="$3" min="$4" label="$5"
    local sf ss
    sf="$(median_ns "$smoke" "$group" "$fast")"
    ss="$(median_ns "$smoke" "$group" "$slow")"
    if [ "$sf" = "null" ] || [ "$ss" = "null" ]; then
        echo "  FAIL $label: gated pair missing from smoke run" >&2
        fail=1
        return
    fi
    local verdict
    verdict="$(jq -n --argjson sf "$sf" --argjson ss "$ss" --argjson min "$min" '
        ($ss / $sf) as $now |
        {now: (($now * 100 | round) / 100),
         ok: ($now >= $min)} |
        "\(if .ok then "ok  " else "FAIL" end) speedup \(.now)x vs floor \($min)x"')"
    verdict="${verdict%\"}"; verdict="${verdict#\"}"
    echo "  $verdict  $label" >&2
    case "$verdict" in FAIL*) fail=1 ;; esac
}

# check_abs_max GROUP NUM_BENCH DEN_BENCH MAX_RATIO LABEL
#
# Within-smoke-run *upper* bound: NUM's median must stay <= MAX_RATIO x
# DEN's median. Used where growth, not speedup, is the regression — e.g.
# publish cost as the table grows 10x.
check_abs_max() {
    local group="$1" num="$2" den="$3" max="$4" label="$5"
    local sn sd
    sn="$(median_ns "$smoke" "$group" "$num")"
    sd="$(median_ns "$smoke" "$group" "$den")"
    if [ "$sn" = "null" ] || [ "$sd" = "null" ]; then
        echo "  FAIL $label: gated pair missing from smoke run" >&2
        fail=1
        return
    fi
    local verdict
    verdict="$(jq -n --argjson sn "$sn" --argjson sd "$sd" --argjson max "$max" '
        ($sn / $sd) as $now |
        {now: (($now * 100 | round) / 100),
         ok: ($now <= $max)} |
        "\(if .ok then "ok  " else "FAIL" end) ratio \(.now)x vs ceiling \($max)x"')"
    verdict="${verdict%\"}"; verdict="${verdict#\"}"
    echo "  $verdict  $label" >&2
    case "$verdict" in FAIL*) fail=1 ;; esac
}

check matmul           "blocked/512"     "seed_ikj/512"     "matmul/512 (blocked vs seed_ikj)"
check_abs matmul "blocked/512" "blocked_scalar/512" "${MIN_SIMD_SPEEDUP:-1.5}" \
    "matmul/512 (dispatched SIMD vs forced-scalar kernel)"
check factor           "svd_blocked/512" "svd_jacobi/512"   "factor/512 (blocked SVD vs one-sided Jacobi)"
check join_batch       "batched_qr/500"  "per_host_qr/500"  "join_batch/500 (batched vs per-host QR)"
check streaming_update "incremental/500" "full_refit/500"   "streaming_update/500 (incremental vs full refit)"
check serve            "coalesced_join/500" "per_request_join/500" "serve/500 (coalesced vs per-request admission)"
check_abs_max serve_sharded "publish_churn/10x" "publish_churn/1x" "${MAX_PUBLISH_GROWTH:-2.0}" \
    "serve_sharded (publish churn at 10x hosts vs 1x — chunk-tree publish)"
check_abs serve_sharded "qps/shards2" "qps/shards1" "${MIN_SHARD_QPS_RATIO:-0.7}" \
    "serve_sharded (2-shard single-core qps vs 1-shard)"
check_abs serve_sharded "qps/shards4" "qps/shards1" "${MIN_SHARD_QPS_RATIO:-0.7}" \
    "serve_sharded (4-shard single-core qps vs 1-shard)"
check_abs serve_sharded "qps/shards8" "qps/shards1" "${MIN_SHARD_QPS_RATIO:-0.7}" \
    "serve_sharded (8-shard single-core qps vs 1-shard)"
check_abs epoch_apply "dag/500" "serial/500" "${MIN_DAG_RATIO:-0.9}" \
    "epoch_apply/500 (DAG vs serial epoch application)"
check_abs epoch_apply "dag/5000" "serial/5000" "${MIN_DAG_RATIO:-0.9}" \
    "epoch_apply/5000 (DAG vs serial epoch application)"
# Pipelined batch vs barriered epochs on localized drift. The 500-host
# pair sits below StalenessPolicy::min_pipeline_hosts, so the auto policy
# runs it barriered (the clamp must keep small batches at parity); the
# 5000-host pair engages the pipeline worker — on a multi-core runner the
# rejoin tier genuinely overlaps the next epoch's plan+absorb and the
# ratio sits at >= 1.0 (set MIN_PIPELINE_RATIO=1.0 there); on a
# single-core runner overlap cannot create cycles and the ratio is ~1x
# minus one worker hand-off per epoch (same honesty note as
# MIN_DAG_RATIO / MIN_SHARD_QPS_RATIO). Quiet runs of this pair measure
# 0.9-1.1x, but a loaded single-core runner swings +-30 % at this
# sub-10 ms scale, so the 0.6 default floor sits below that noise band
# and only catches structural regressions (a dropped clamp, a serialized
# worker). The companion plan-shape claim (pruned critical
# path < full plan's) is asserted inside the bench binary itself, so a
# violation aborts the smoke run before this gate.
check_abs epoch_pipeline "pipelined_localized/500" "barriered_localized/500" \
    "${MIN_PIPELINE_RATIO:-0.6}" \
    "epoch_pipeline/500 (pipelined vs barriered, localized drift)"
check_abs epoch_pipeline "pipelined_localized/5000" "barriered_localized/5000" \
    "${MIN_PIPELINE_RATIO:-0.6}" \
    "epoch_pipeline/5000 (pipelined vs barriered, localized drift)"
# Telemetry overhead on the query hot path: instrumented throughput must
# stay >= MIN_TELEMETRY_RATIO (default 0.9) x the disabled baseline —
# i.e. disabled_ns / instrumented_ns >= 0.9. Both sides run in the same
# process against the same admitted deployment, so the ratio isolates
# exactly the recording cost (striped counter bumps + 1-in-64 sampled
# spans).
check_abs telemetry_overhead "query_instrumented/500" "query_disabled/500" \
    "${MIN_TELEMETRY_RATIO:-0.9}" \
    "telemetry_overhead/500 (instrumented vs disabled query path)"

if [ "$fail" -ne 0 ]; then
    echo "bench regression gate FAILED" >&2
    exit 1
fi
echo "bench regression gate passed" >&2
