#!/usr/bin/env bash
# Validates the telemetry smoke artifacts produced by
#   ides-cli serve --metrics-out METRICS --trace-out TRACE --json > SERVING
#
# Usage:
#   scripts/check_telemetry.sh METRICS_PROM TRACE_JSON SERVING_JSON
#
# What is checked:
#   1. The Prometheus exposition carries every required series (query
#      counters, the query/publish latency histograms, the dropped-spans
#      counter).
#   2. Losslessness: ides_spans_dropped_total must be exactly 0 — the
#      span ring buffers never overflowed, so the trace is complete.
#   3. Exact reconciliation: the exposition's query-histogram
#      _count/_sum equal the --json telemetry_query_count /
#      telemetry_query_sum_ns byte-for-byte (both are integers rendered
#      from the same merged histogram; any drift means the exporter and
#      the load report disagree about what was measured).
#   4. The Chrome trace is valid JSON, every event carries ts and dur,
#      and at least 6 distinct stage names were recorded.
#   5. Pipeline overlap: at least one worker-side `rejoin` span overlaps
#      in wall-clock time with a `plan`/`absorb_*` span on a different
#      thread — the cross-epoch pipeline visibly ran concurrently.

set -euo pipefail
cd "$(dirname "$0")/.."

metrics="${1:?usage: check_telemetry.sh METRICS_PROM TRACE_JSON SERVING_JSON}"
trace="${2:?usage: check_telemetry.sh METRICS_PROM TRACE_JSON SERVING_JSON}"
serving="${3:?usage: check_telemetry.sh METRICS_PROM TRACE_JSON SERVING_JSON}"

fail=0

# 1. Required series.
for series in \
    ides_queries_total ides_cache_hits_total ides_epochs_total \
    ides_publishes_total ides_spans_dropped_total \
    ides_pair_cache_occupied ides_chunk_share_ratio \
    ides_publish_latency_ns_count ides_query_latency_ns_bucket \
    ides_query_latency_ns_sum ides_query_latency_ns_count; do
    if ! grep -q "^$series" "$metrics"; then
        echo "FAIL: exposition missing series $series" >&2
        fail=1
    fi
done

# 2. Lossless trace.
dropped="$(awk '$1 == "ides_spans_dropped_total" { print $2 }' "$metrics")"
if [ "${dropped:-missing}" != "0" ]; then
    echo "FAIL: ides_spans_dropped_total = ${dropped:-missing} (want 0: trace must be lossless)" >&2
    fail=1
else
    echo "ok   spans dropped: 0 (lossless trace)" >&2
fi

# 3. Exposition _count/_sum reconcile exactly with the --json totals.
count="$(awk '$1 == "ides_query_latency_ns_count" { print $2 }' "$metrics")"
sum="$(awk '$1 == "ides_query_latency_ns_sum" { print $2 }' "$metrics")"
jcount="$(jq -r '.telemetry_query_count' "$serving")"
jsum="$(jq -r '.telemetry_query_sum_ns' "$serving")"
if [ "${count:-a}" = "${jcount:-b}" ] && [ "${sum:-a}" = "${jsum:-b}" ]; then
    echo "ok   query histogram reconciles: count $count, sum ${sum}ns" >&2
else
    echo "FAIL: exposition/_json mismatch: _count $count vs $jcount, _sum $sum vs $jsum" >&2
    fail=1
fi

# 4. Trace structure: valid JSON, complete events, stage coverage.
if ! jq -e '.traceEvents | length > 0' "$trace" > /dev/null; then
    echo "FAIL: trace has no events (or is not valid JSON)" >&2
    fail=1
fi
if ! jq -e '[.traceEvents[] | select((has("ts") and has("dur")) | not)] | length == 0' \
    "$trace" > /dev/null; then
    echo "FAIL: trace contains events without ts/dur" >&2
    fail=1
fi
stages="$(jq -r '[.traceEvents[].name] | unique | length' "$trace")"
if [ "${stages:-0}" -ge 6 ]; then
    echo "ok   trace stages: $stages distinct ($(jq -r '[.traceEvents[].name] | unique | join(",")' "$trace"))" >&2
else
    echo "FAIL: only ${stages:-0} distinct stage names in trace (want >= 6)" >&2
    fail=1
fi

# 5. Pipeline overlap: a rejoin span concurrent with plan/absorb work on
# another thread. Write-side spans number in the hundreds over a 2 s
# smoke; the caps only bound the quadratic scan against a pathological
# trace while still covering every span a normal run produces.
overlap="$(jq -r '
    ([.traceEvents[] | select(.name == "rejoin")] | .[0:2000]) as $rej |
    ([.traceEvents[]
      | select(.name == "plan" or .name == "absorb_solve" or .name == "absorb_commit")]
     | .[0:2000]) as $ab |
    [ $rej[] as $r
      | $ab[]
      | select(.tid != $r.tid
               and (.ts < ($r.ts + $r.dur))
               and ($r.ts < (.ts + .dur))) ]
    | length' "$trace")"
if [ "${overlap:-0}" -gt 0 ]; then
    echo "ok   pipeline overlap: $overlap rejoin/absorb span pairs ran concurrently" >&2
else
    echo "FAIL: no rejoin span overlaps a plan/absorb span on another thread" >&2
    fail=1
fi

if [ "$fail" -ne 0 ]; then
    echo "telemetry smoke gate FAILED" >&2
    exit 1
fi
echo "telemetry smoke gate passed" >&2
