//! Integration tests for the simulated IDES wire protocol: joins over the
//! discrete-event network must agree with offline joins, and the protocol
//! must interoperate with the relaxed architecture.

use std::sync::Arc;

use ides::protocol::simulate_join;
use ides::system::{IdesConfig, InformationServer};
use ides_datasets::generators::nlanr_like;
use ides_datasets::DistanceMatrix;
use ides_linalg::Matrix;

fn landmark_matrix(topo: &ides_netsim::TransitStubTopology, landmarks: &[usize]) -> DistanceMatrix {
    let m = landmarks.len();
    let values = Matrix::from_fn(m, m, |i, j| topo.host_rtt(landmarks[i], landmarks[j]));
    DistanceMatrix::full("landmarks", values).unwrap()
}

/// A protocol join (pings over the simulated network) must produce the
/// same vectors as an offline join fed with the true RTTs, because the
/// discrete-event latency is deterministic and pings measure it exactly.
#[test]
fn protocol_join_matches_offline_join() {
    let ds = nlanr_like(50, 201).unwrap();
    let landmarks: Vec<usize> = (0..12).collect();
    let lm = landmark_matrix(&ds.topology, &landmarks);
    let server = Arc::new(InformationServer::build(&lm, IdesConfig::new(6)).unwrap());

    let host = 25usize;
    let outcome = simulate_join(&ds.topology, server.clone(), &landmarks, host, 2).unwrap();

    let rtts: Vec<f64> = landmarks
        .iter()
        .map(|&l| ds.topology.host_rtt(host, l))
        .collect();
    let offline = server.join(&rtts, &rtts).unwrap();
    for (a, b) in outcome.vectors.outgoing.iter().zip(offline.outgoing.iter()) {
        assert!((a - b).abs() < 1e-6, "protocol {a} vs offline {b}");
    }
    for (a, b) in outcome.vectors.incoming.iter().zip(offline.incoming.iter()) {
        assert!((a - b).abs() < 1e-6, "protocol {a} vs offline {b}");
    }
}

/// Multiple hosts joining via the protocol can predict each other's
/// distances with accuracy comparable to the true RTTs.
#[test]
fn protocol_joined_hosts_predict_each_other() {
    let ds = nlanr_like(60, 202).unwrap();
    let landmarks: Vec<usize> = (0..15).collect();
    let lm = landmark_matrix(&ds.topology, &landmarks);
    let server = Arc::new(InformationServer::build(&lm, IdesConfig::new(8)).unwrap());

    let hosts = [20usize, 30, 40, 50];
    let joined: Vec<_> = hosts
        .iter()
        .map(|&h| {
            simulate_join(&ds.topology, server.clone(), &landmarks, h, 2)
                .unwrap()
                .vectors
        })
        .collect();

    let mut rels = Vec::new();
    for i in 0..hosts.len() {
        for j in 0..hosts.len() {
            if i == j {
                continue;
            }
            let actual = ds.topology.host_rtt(hosts[i], hosts[j]);
            let predicted = joined[i].distance_to_host(&joined[j]);
            rels.push((predicted - actual).abs() / actual);
        }
    }
    rels.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = rels[rels.len() / 2];
    assert!(median < 0.35, "median cross-prediction error {median}");
}

/// Join time scales with landmark RTTs, not with the number of probes
/// (pings run in parallel): doubling probes must not double elapsed time.
#[test]
fn probe_parallelism() {
    let ds = nlanr_like(40, 203).unwrap();
    let landmarks: Vec<usize> = (0..10).collect();
    let lm = landmark_matrix(&ds.topology, &landmarks);
    let server = Arc::new(InformationServer::build(&lm, IdesConfig::new(5)).unwrap());
    let host = 20usize;
    let t1 = simulate_join(&ds.topology, server.clone(), &landmarks, host, 1)
        .unwrap()
        .elapsed_ms;
    let t4 = simulate_join(&ds.topology, server, &landmarks, host, 4)
        .unwrap()
        .elapsed_ms;
    assert!(
        t4 < t1 * 1.5,
        "4-probe join took {t4} ms vs 1-probe {t1} ms — probes are not parallel"
    );
}

/// Message count accounting: join-request/list + probes*landmarks*2 +
/// vector-request/reply.
#[test]
fn message_accounting() {
    let ds = nlanr_like(40, 204).unwrap();
    let landmarks: Vec<usize> = (0..8).collect();
    let lm = landmark_matrix(&ds.topology, &landmarks);
    let server = Arc::new(InformationServer::build(&lm, IdesConfig::new(4)).unwrap());
    for probes in [1u32, 3, 5] {
        let outcome = simulate_join(&ds.topology, server.clone(), &landmarks, 30, probes).unwrap();
        let expected = 2 + 8 * probes as usize * 2 + 2;
        assert_eq!(outcome.messages, expected, "probes = {probes}");
    }
}
