//! Cross-crate integration: topology generation → measurement → dataset →
//! factorization → IDES joins → prediction scoring, plus the headline
//! comparative claims of the paper's evaluation at reduced scale.

use ides::eval::{evaluate_ics, evaluate_ides, evaluate_ides_with_failures};
use ides::system::{split_landmarks, IdesConfig};
use ides_datasets::generators::{nlanr_like, p2psim_like};
use ides_datasets::stats;
use ides_mf::lipschitz::LipschitzPca;
use ides_mf::metrics::{reconstruction_errors, Cdf};
use ides_mf::nmf::{self, NmfConfig};
use ides_mf::svd_model::{self, SvdConfig};

/// The full IDES pipeline on an NLANR-like network: prediction errors must
/// land in a usable range and beat the ICS baseline (Fig. 6(b) shape).
#[test]
fn end_to_end_prediction_beats_ics() {
    let ds = nlanr_like(70, 101).unwrap();
    let (landmarks, ordinary) = split_landmarks(70, 20, 5);
    let ides = evaluate_ides(&ds.matrix, &landmarks, &ordinary, IdesConfig::new(8)).unwrap();
    let ics = evaluate_ics(&ds.matrix, &landmarks, &ordinary, 8).unwrap();
    assert_eq!(ides.hosts_joined, 50);
    assert_eq!(ides.pairs_evaluated, 50 * 49);
    let m_ides = ides.cdf().median();
    let m_ics = ics.cdf().median();
    assert!(m_ides < m_ics, "IDES {m_ides} vs ICS {m_ics}");
    assert!(
        m_ides < 0.3,
        "IDES median error {m_ides} out of expected range"
    );
}

/// Fig. 3 shape: at d = 10, SVD/NMF reconstruction is several times more
/// accurate than Lipschitz+PCA, and SVD ≥ NMF (global vs local optimum).
#[test]
fn reconstruction_ordering_matches_figure3() {
    let ds = nlanr_like(60, 102).unwrap();
    let d = 10;
    let svd = svd_model::fit(&ds.matrix, SvdConfig::new(d)).unwrap();
    let nmf = nmf::fit(&ds.matrix, NmfConfig::new(d)).unwrap().model;
    let lip = LipschitzPca::fit(&ds.matrix, d).unwrap();

    let m_svd = Cdf::new(reconstruction_errors(&svd, &ds.matrix)).median();
    let m_nmf = Cdf::new(reconstruction_errors(&nmf, &ds.matrix)).median();
    let m_lip = Cdf::new(reconstruction_errors(&lip, &ds.matrix)).median();

    assert!(
        m_svd <= m_nmf * 1.05,
        "SVD {m_svd} should be <= NMF {m_nmf}"
    );
    assert!(
        m_svd * 2.0 < m_lip,
        "SVD {m_svd} should be several times better than Lipschitz {m_lip}"
    );
}

/// Fig. 7 shape: with 50 landmarks, losing 40 % of them hurts much less
/// than with 20 landmarks (relative degradation).
#[test]
fn failure_robustness_scales_with_landmark_count() {
    let ds = nlanr_like(100, 103).unwrap();
    let run = |m: usize, frac: f64| -> f64 {
        let (landmarks, ordinary) = split_landmarks(100, m, 9);
        evaluate_ides_with_failures(
            &ds.matrix,
            &landmarks,
            &ordinary,
            IdesConfig::new(8),
            frac,
            77,
        )
        .unwrap()
        .cdf()
        .median()
    };
    let d20_0 = run(20, 0.0);
    let d20_4 = run(20, 0.4);
    let d50_0 = run(50, 0.0);
    let d50_4 = run(50, 0.4);
    let degradation_20 = d20_4 / d20_0.max(1e-9);
    let degradation_50 = d50_4 / d50_0.max(1e-9);
    assert!(
        degradation_50 < degradation_20,
        "50-landmark degradation {degradation_50} should beat 20-landmark {degradation_20} \
         (20lm: {d20_0}->{d20_4}, 50lm: {d50_0}->{d50_4})"
    );
    // The paper's headline: 40% failures with 50 landmarks ≈ no failures.
    assert!(
        degradation_50 < 2.2,
        "50 landmarks should tolerate 40% failures, got {degradation_50}x"
    );
}

/// The substrate must exhibit the structural phenomena the paper's model
/// targets: triangle-inequality violations and (for King-style data)
/// asymmetry — end-to-end through the dataset layer.
#[test]
fn substrate_reproduces_routing_phenomena() {
    let nlanr = nlanr_like(60, 104).unwrap();
    let tiv = stats::triangle_violation_fraction(&nlanr.matrix, 0.005, 20_000);
    assert!(tiv > 0.05, "NLANR-like TIV fraction {tiv}");

    let king = p2psim_like(60, 105).unwrap();
    let asym = stats::asymmetry_index(&king.matrix);
    assert!(asym > 0.01, "King-style asymmetry {asym}");
}

/// NMF predictions from an NMF server with nonnegative joins are always
/// nonnegative (the §5.1 guarantee), even on pairs it never measured.
#[test]
fn nmf_pipeline_never_predicts_negative() {
    use ides::projection::{JoinOptions, JoinSolver};
    let ds = nlanr_like(40, 106).unwrap();
    let (landmarks, ordinary) = split_landmarks(40, 15, 4);
    let mut config = IdesConfig::nmf(6);
    config.join = JoinOptions {
        solver: JoinSolver::NonNegative,
        ridge: 0.0,
    };
    let lm = ds.matrix.submatrix(&landmarks, &landmarks);
    let server = ides::system::InformationServer::build(&lm, config).unwrap();
    let joined: Vec<_> = ordinary
        .iter()
        .map(|&h| {
            let d_out: Vec<f64> = landmarks
                .iter()
                .map(|&l| ds.matrix.get(h, l).unwrap())
                .collect();
            let d_in: Vec<f64> = landmarks
                .iter()
                .map(|&l| ds.matrix.get(l, h).unwrap())
                .collect();
            server.join(&d_out, &d_in).unwrap()
        })
        .collect();
    for a in &joined {
        for b in &joined {
            assert!(a.distance_to_host(b) >= 0.0, "negative prediction");
        }
    }
}

/// SVD and NMF agree closely on reconstruction when both see the full
/// matrix (Fig. 3: "NMF has almost exactly the same median relative errors
/// as SVD ... when d < 10").
#[test]
fn svd_and_nmf_agree_at_low_dimension() {
    let ds = nlanr_like(50, 107).unwrap();
    for d in [4, 8] {
        let svd = svd_model::fit(&ds.matrix, SvdConfig::new(d)).unwrap();
        let nmf = nmf::fit(&ds.matrix, NmfConfig::new(d)).unwrap().model;
        let m_svd = Cdf::new(reconstruction_errors(&svd, &ds.matrix)).median();
        let m_nmf = Cdf::new(reconstruction_errors(&nmf, &ds.matrix)).median();
        assert!(
            (m_nmf - m_svd).abs() < 0.05 + m_svd,
            "d={d}: SVD {m_svd} vs NMF {m_nmf} diverge"
        );
    }
}
