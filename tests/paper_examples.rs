//! Integration tests reproducing every worked example in the paper
//! end-to-end through the public APIs.

use ides::system::{IdesConfig, InformationServer};
use ides_datasets::DistanceMatrix;
use ides_linalg::svd::svd;
use ides_linalg::Matrix;
use ides_mf::model::DistanceEstimator;
use ides_mf::svd_model::{fit_matrix, SvdConfig};
use ides_netsim::topology::figure1_distance_matrix;

/// §4.1: the Figure-1 matrix has singular values (4, 2, 2, 0), so the d=3
/// factorization is exact and X, Y reconstruct D perfectly.
#[test]
fn paper_fig1_svd_worked_example() {
    let d = figure1_distance_matrix();
    let decomposition = svd(&d).unwrap();
    let sv = &decomposition.singular_values;
    assert!((sv[0] - 4.0).abs() < 1e-10, "S11 = {}", sv[0]);
    assert!((sv[1] - 2.0).abs() < 1e-10, "S22 = {}", sv[1]);
    assert!((sv[2] - 2.0).abs() < 1e-10, "S33 = {}", sv[2]);
    assert!(sv[3].abs() < 1e-10, "S44 = {}", sv[3]);

    let model = fit_matrix(
        &d,
        SvdConfig {
            dim: 3,
            force_exact: true,
        },
    )
    .unwrap();
    assert!(model.reconstruct().approx_eq(&d, 1e-9), "XYᵀ != D");

    // The paper's specific factor matrices are one valid solution; ours may
    // differ by an orthogonal transform, but every entry estimate matches.
    for i in 0..4 {
        for j in 0..4 {
            assert!(
                (model.estimate(i, j) - d[(i, j)]).abs() < 1e-9,
                "D[{i}][{j}] estimated as {}",
                model.estimate(i, j)
            );
        }
    }
}

/// §2.2: no 2-D Euclidean embedding reconstructs Figure 1 exactly — the
/// intuitive embedding underestimates the diagonal (√2 instead of 2).
#[test]
fn paper_fig1_euclidean_embedding_fails() {
    // The paper's "intuitive" embedding of the four hosts.
    let coords = Matrix::from_vec(4, 2, vec![-0.5, 0.5, 0.5, 0.5, -0.5, -0.5, 0.5, -0.5]).unwrap();
    let emb = ides_mf::model::EuclideanModel::new(coords);
    // Adjacent pairs are exact...
    assert!((emb.estimate(0, 1) - 1.0).abs() < 1e-12);
    // ...but the diagonal comes out √2 instead of the true 2.
    let diag = emb.estimate(0, 3);
    assert!((diag - 2.0_f64.sqrt()).abs() < 1e-12);
    assert!((figure1_distance_matrix()[(0, 3)] - diag).abs() > 0.5);
}

/// §5.1: basic-architecture join. H1 measures [0.5 1.5 1.5 2.5] to the
/// four landmarks; landmark distances are exactly preserved and the
/// H1–H2 prediction is 3.25 against a true distance of 3.
#[test]
fn paper_fig4_basic_join() {
    let lm = DistanceMatrix::full("fig1", figure1_distance_matrix()).unwrap();
    let server = InformationServer::build(&lm, IdesConfig::new(3)).unwrap();
    let m1 = [0.5, 1.5, 1.5, 2.5];
    let m2 = [2.5, 1.5, 1.5, 0.5];
    let h1 = server.join(&m1, &m1).unwrap();
    let h2 = server.join(&m2, &m2).unwrap();

    for (i, &expected) in m1.iter().enumerate() {
        let lv = server.landmark_vectors(i);
        assert!((h1.distance_to(&lv.incoming) - expected).abs() < 1e-9);
        assert!((h1.distance_from(&lv.outgoing) - expected).abs() < 1e-9);
    }
    assert!((h1.distance_to_host(&h2) - 3.25).abs() < 1e-9);
    assert!((h2.distance_to_host(&h1) - 3.25).abs() < 1e-9);
}

/// §5.2: relaxed-architecture join. H1 joins via landmarks L1–L3 only and
/// still predicts its unmeasured distance to L4 exactly (2.5); H2 then
/// joins via L2, L4 and the ordinary host H1, with ≤ 15 % worst-case
/// relative error on its unmeasured landmark distances (paper's numbers:
/// H2–L1 ≈ 2.3 vs 2.5, H2–L3 ≈ 1.3 vs 1.5).
#[test]
fn paper_fig5_relaxed_join() {
    let lm = DistanceMatrix::full("fig1", figure1_distance_matrix()).unwrap();
    let server = InformationServer::build(&lm, IdesConfig::new(3)).unwrap();

    // H1 via L1, L2, L3.
    let h1 = server
        .join_partial(&[0, 1, 2], &[0.5, 1.5, 1.5], &[0.5, 1.5, 1.5])
        .unwrap();
    let l4 = server.landmark_vectors(3);
    assert!((h1.distance_to(&l4.incoming) - 2.5).abs() < 1e-9, "H1->L4");

    // H2 via L2, L4, H1.
    let refs = vec![server.landmark_vectors(1), server.landmark_vectors(3), h1];
    let h2 = server
        .join_via_references(&refs, &[1.5, 0.5, 3.0], &[1.5, 0.5, 3.0])
        .unwrap();
    let l1 = server.landmark_vectors(0);
    let l3 = server.landmark_vectors(2);
    let e1 = (h2.distance_to(&l1.incoming) - 2.5).abs() / 2.5;
    let e3 = (h2.distance_to(&l3.incoming) - 1.5).abs() / 1.5;
    assert!(e1 <= 0.16, "H2->L1 relative error {e1}");
    assert!(e3 <= 0.16, "H2->L3 relative error {e3}");
}

/// §3: the factor model represents asymmetric distances, which no network
/// embedding can.
#[test]
fn asymmetric_matrix_fully_recovered() {
    let d = Matrix::from_vec(
        4,
        4,
        vec![
            0.0, 12.0, 3.0, 40.0, //
            2.0, 0.0, 9.0, 8.0, //
            30.0, 1.0, 0.0, 11.0, //
            4.0, 80.0, 7.0, 0.0,
        ],
    )
    .unwrap();
    let model = fit_matrix(
        &d,
        SvdConfig {
            dim: 4,
            force_exact: true,
        },
    )
    .unwrap();
    assert!(model.reconstruct().approx_eq(&d, 1e-8));
    // Spot-check asymmetry preserved.
    assert!((model.estimate(0, 3) - 40.0).abs() < 1e-8);
    assert!((model.estimate(3, 0) - 4.0).abs() < 1e-8);
}

/// Footnote 3: D need not be square — a rectangular matrix from one host
/// set to another factors the same way.
#[test]
fn rectangular_factorization() {
    let d = Matrix::from_fn(6, 3, |i, j| 10.0 + (i as f64) * 2.0 + (j as f64) * 5.0);
    let model = fit_matrix(
        &d,
        SvdConfig {
            dim: 2,
            force_exact: true,
        },
    )
    .unwrap();
    assert_eq!(model.x().shape(), (6, 2));
    assert_eq!(model.y().shape(), (3, 2));
    assert!(
        model.reconstruct().approx_eq(&d, 1e-8),
        "rank-2 structure is exact"
    );
}
