//! Vendored, offline subset of the `crossbeam` API.
//!
//! Scoped threads with the crossbeam calling convention (`scope(|s| ...)`
//! returning `Result`, spawn closures receiving the scope), implemented
//! over `std::thread::scope` (stable since Rust 1.63).

#![forbid(unsafe_code)]

/// Scoped-thread API.
pub mod thread {
    use std::thread as std_thread;

    /// Spawning handle passed to the [`scope`] closure and to each spawned
    /// closure (crossbeam lets spawned threads spawn siblings).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std_thread::Scope<'scope, 'env>,
    }

    // A `Scope` is just a shared reference; copying it lets spawned
    // closures receive their own handle without borrowing the parent's.
    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }
    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    /// Handle to a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std_thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its result (`Err` if the
        /// thread panicked).
        pub fn join(self) -> std_thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives the scope handle.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let me = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&me)),
            }
        }
    }

    /// Runs `f` with a scope handle; all threads spawned in the scope are
    /// joined before this returns. Returns `Ok` unless a spawned thread
    /// panicked without being joined (std propagates that panic instead,
    /// so in practice this is always `Ok` — matching how the workspace
    /// uses crossbeam's `.unwrap()`).
    pub fn scope<'env, F, R>(f: F) -> std_thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std_thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;

    #[test]
    fn scope_joins_and_returns() {
        let data = [1, 2, 3, 4];
        let total = thread::scope(|s| {
            let h1 = s.spawn(|_| data[..2].iter().sum::<i32>());
            let h2 = s.spawn(|_| data[2..].iter().sum::<i32>());
            h1.join().unwrap() + h2.join().unwrap()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_from_scope_handle() {
        let n = thread::scope(|s| {
            let h = s.spawn(|s2| {
                let inner = s2.spawn(|_| 21);
                inner.join().unwrap() * 2
            });
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }
}
