//! Vendored, offline subset of the `bytes` crate API.
//!
//! Provides cheaply clonable immutable [`Bytes`], a growable [`BytesMut`]
//! with a consumed-prefix cursor, and the tiny slices of the [`Buf`] /
//! [`BufMut`] traits the workspace's framing code uses. `Bytes` is backed
//! by an `Arc<[u8]>` so clones are O(1), matching upstream semantics
//! closely enough for a deterministic network simulation.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// Shared printable-ASCII debug formatting for both buffer types.
macro_rules! fmt_bytes_debug {
    () => {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "b\"")?;
            for &b in self.iter() {
                if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                    write!(f, "{}", b as char)?;
                } else {
                    write!(f, "\\x{b:02x}")?;
                }
            }
            write!(f, "\"")
        }
    };
}

/// Immutable, cheaply clonable byte buffer.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wraps a static byte slice (copied; upstream borrows, but the
    /// observable behavior is identical).
    pub fn from_static(b: &'static [u8]) -> Self {
        Bytes { data: Arc::from(b) }
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(b: &[u8]) -> Self {
        Bytes { data: Arc::from(b) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            data: Arc::from(v.into_boxed_slice()),
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(b: &[u8]) -> Self {
        Bytes::copy_from_slice(b)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl fmt::Debug for Bytes {
    fmt_bytes_debug!();
}

/// Growable byte buffer with an O(1) consumed-prefix cursor.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
    head: usize,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
            head: 0,
        }
    }

    /// Readable length.
    pub fn len(&self) -> usize {
        self.data.len() - self.head
    }

    /// True when no readable bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends bytes.
    pub fn extend_from_slice(&mut self, b: &[u8]) {
        self.data.extend_from_slice(b);
    }

    /// Splits off and returns the first `n` readable bytes.
    pub fn split_to(&mut self, n: usize) -> BytesMut {
        assert!(n <= self.len(), "split_to out of bounds");
        let out = BytesMut {
            data: self.data[self.head..self.head + n].to_vec(),
            head: 0,
        };
        self.head += n;
        self.compact_if_large();
        out
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: Arc::from(&self.data[self.head..]),
        }
    }

    fn compact_if_large(&mut self) {
        // Reclaim the consumed prefix once it dominates the allocation.
        if self.head > 4096 && self.head * 2 > self.data.len() {
            self.data.drain(..self.head);
            self.head = 0;
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.head..]
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl fmt::Debug for BytesMut {
    fmt_bytes_debug!();
}

/// Read-side cursor operations.
pub trait Buf {
    /// Remaining readable bytes.
    fn remaining(&self) -> usize;
    /// Consumes `n` bytes from the front.
    fn advance(&mut self, n: usize);
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance out of bounds");
        self.head += n;
        self.compact_if_large();
    }
}

/// Write-side append operations.
pub trait BufMut {
    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32);
    /// Appends a byte slice.
    fn put_slice(&mut self, b: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u32(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    fn put_slice(&mut self, b: &[u8]) {
        self.data.extend_from_slice(b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_roundtrip_and_clone() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let c = b.clone();
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b, c);
        assert_eq!(Bytes::from_static(b"hi").len(), 2);
    }

    #[test]
    fn bytes_mut_cursor_ops() {
        let mut m = BytesMut::with_capacity(8);
        m.put_u32(5);
        m.put_slice(b"hello");
        assert_eq!(m.len(), 9);
        assert_eq!(&m[..4], &5u32.to_be_bytes());
        m.advance(4);
        let word = m.split_to(5);
        assert_eq!(&word[..], b"hello");
        assert!(m.is_empty());
        assert_eq!(&word.freeze()[..], b"hello");
    }

    #[test]
    fn compaction_preserves_content() {
        let mut m = BytesMut::new();
        m.extend_from_slice(&vec![7u8; 10_000]);
        m.advance(9_000);
        assert_eq!(m.len(), 1_000);
        assert!(m.iter().all(|&b| b == 7));
    }
}
