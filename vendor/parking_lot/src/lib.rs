//! Vendored, offline subset of the `parking_lot` API.
//!
//! A [`Mutex`] and an [`RwLock`] whose `lock()`/`read()`/`write()` return
//! their guards directly (no poisoning), implemented over the `std::sync`
//! primitives. Poisoned locks are recovered, which matches parking_lot's
//! no-poisoning semantics.

#![forbid(unsafe_code)]

use std::fmt;
use std::sync::{
    Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock,
    RwLockReadGuard as StdRwLockReadGuard, RwLockWriteGuard as StdRwLockWriteGuard,
};

/// Mutual exclusion without lock poisoning.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never panics on a
    /// poisoned lock — the poison is discarded, as in parking_lot.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// Reader-writer lock without lock poisoning.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

/// RAII shared-read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = StdRwLockReadGuard<'a, T>;
/// RAII exclusive-write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = StdRwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a reader-writer lock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: StdRwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available. Never panics
    /// on a poisoned lock — the poison is discarded, as in parking_lot.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|p| p.into_inner())
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|p| p.into_inner())
    }

    /// Attempts to acquire shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            None => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_returns_guard_directly() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn shared_across_threads() {
        let m = Arc::new(Mutex::new(0usize));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn rwlock_read_write_round_trip() {
        let l = RwLock::new(vec![1, 2, 3]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(*r1, *r2);
            assert!(l.try_write().is_none(), "readers block writers");
        }
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
        assert_eq!(l.into_inner(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn rwlock_shared_across_threads() {
        let l = Arc::new(RwLock::new(0usize));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let l = l.clone();
                std::thread::spawn(move || {
                    for _ in 0..500 {
                        *l.write() += 1;
                        let _ = *l.read();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*l.read(), 2000);
    }
}
