//! Vendored, offline subset of the `parking_lot` API.
//!
//! A [`Mutex`] whose `lock()` returns the guard directly (no poisoning),
//! implemented over `std::sync::Mutex`. Poisoned locks are recovered, which
//! matches parking_lot's no-poisoning semantics.

#![forbid(unsafe_code)]

use std::fmt;
use std::sync::{Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// Mutual exclusion without lock poisoning.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never panics on a
    /// poisoned lock — the poison is discarded, as in parking_lot.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_returns_guard_directly() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn shared_across_threads() {
        let m = Arc::new(Mutex::new(0usize));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }
}
