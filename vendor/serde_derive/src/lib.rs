//! Vendored `Serialize` / `Deserialize` derive macros for the serde shim.
//!
//! Parses the derive input with the bare `proc_macro` token API (no
//! syn/quote available offline) and emits impls of the shim's
//! `serde::Serialize` / `serde::Deserialize` traits. Supported shapes —
//! exactly what this workspace uses:
//!
//! * structs with named fields,
//! * enums whose variants are unit or have named fields.
//!
//! Representation matches serde_json's defaults: structs become objects
//! keyed by field name; unit variants become strings; data variants become
//! single-key objects (externally tagged). Generic types, tuple structs,
//! tuple variants, and `#[serde(...)]` attributes are rejected at compile
//! time with a clear panic message.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    Struct {
        name: String,
        fields: Vec<String>,
    },
    Enum {
        name: String,
        variants: Vec<(String, Vec<String>)>,
    },
}

/// Derives the shim's `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse(input);
    let out = match &shape {
        Shape::Struct { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("(String::from({f:?}), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!(
                "#[automatically_derived]\n\
                 #[allow(clippy::all)]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Obj(vec![{}])\n\
                     }}\n\
                 }}",
                entries.join(", ")
            )
        }
        Shape::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, fields)| {
                    if fields.is_empty() {
                        format!("{name}::{v} => ::serde::Value::Str(String::from({v:?})),")
                    } else {
                        let binds = fields.join(", ");
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!("(String::from({f:?}), ::serde::Serialize::to_value({f}))")
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Value::Obj(vec![\
                             (String::from({v:?}), ::serde::Value::Obj(vec![{}]))]),",
                            entries.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "#[automatically_derived]\n\
                 #[allow(clippy::all)]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    };
    out.parse()
        .expect("serde_derive: generated Serialize impl must parse")
}

/// Derives the shim's `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse(input);
    let out = match &shape {
        Shape::Struct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::from_value(v.field({f:?})?)?"))
                .collect();
            format!(
                "#[automatically_derived]\n\
                 #[allow(clippy::all)]\n\
                 impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::DeError> {{\n\
                         Ok({name} {{ {} }})\n\
                     }}\n\
                 }}",
                inits.join(", ")
            )
        }
        Shape::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, fields)| fields.is_empty())
                .map(|(v, _)| format!("{v:?} => Ok({name}::{v}),"))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter(|(_, fields)| !fields.is_empty())
                .map(|(v, fields)| {
                    let inits: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!("{f}: ::serde::Deserialize::from_value(__inner.field({f:?})?)?")
                        })
                        .collect();
                    format!("{v:?} => Ok({name}::{v} {{ {} }}),", inits.join(", "))
                })
                .collect();
            format!(
                "#[automatically_derived]\n\
                 #[allow(clippy::all, unused_variables, unreachable_patterns)]\n\
                 impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::DeError> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                                 {units}\n\
                                 __other => Err(::serde::DeError(format!(\
                                     \"unknown unit variant `{{__other}}` for {name}\"))),\n\
                             }},\n\
                             ::serde::Value::Obj(__fields) if __fields.len() == 1 => {{\n\
                                 let (__tag, __inner) = &__fields[0];\n\
                                 match __tag.as_str() {{\n\
                                     {tagged}\n\
                                     __other => Err(::serde::DeError(format!(\
                                         \"unknown variant `{{__other}}` for {name}\"))),\n\
                                 }}\n\
                             }}\n\
                             __other => Err(::serde::DeError(format!(\
                                 \"expected {name} variant, found {{}}\", __other.kind()))),\n\
                         }}\n\
                     }}\n\
                 }}",
                units = unit_arms.join("\n"),
                tagged = tagged_arms.join("\n"),
            )
        }
    };
    out.parse()
        .expect("serde_derive: generated Deserialize impl must parse")
}

/// Parses the derive input into a [`Shape`].
fn parse(input: TokenStream) -> Shape {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other:?}"),
    };
    i += 1;
    let name = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, found {other:?}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive: generic types are not supported by the vendored shim");
    }
    let body = match &tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!(
            "serde_derive: only brace-bodied types are supported (tuple/unit \
             structs are not), found {other:?}"
        ),
    };
    match kind.as_str() {
        "struct" => Shape::Struct {
            name,
            fields: parse_named_fields(body),
        },
        "enum" => Shape::Enum {
            name,
            variants: parse_variants(body),
        },
        other => panic!("serde_derive: cannot derive for `{other}`"),
    }
}

/// Skips `#[...]` attributes and `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` and the bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g))
                    if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Parses `name: Type, ...` named fields, returning the names.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let field = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected field name, found {other:?}"),
        };
        fields.push(field);
        i += 1;
        match &tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected `:` after field name, found {other:?}"),
        }
        // Skip the type: scan to the next comma outside angle brackets.
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Parses enum variants: unit or named-field; tuple variants are rejected.
fn parse_variants(body: TokenStream) -> Vec<(String, Vec<String>)> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected variant name, found {other:?}"),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                parse_named_fields(g.stream())
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!(
                    "serde_derive: tuple variant `{name}` is not supported by the \
                     vendored shim; use named fields"
                );
            }
            _ => Vec::new(),
        };
        variants.push((name, fields));
        if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    variants
}
