//! Vendored, offline subset of the `serde_json` API.
//!
//! Prints and parses the serde shim's [`serde::Value`] tree as JSON.
//! Numbers are `f64` and printed with Rust's shortest round-trip `Display`
//! formatting; non-finite numbers serialize as `null` (as in upstream
//! serde_json). The parser is a strict recursive-descent JSON reader with
//! full string-escape support.

#![forbid(unsafe_code)]

use std::fmt;

use serde::{Deserialize, Serialize, Value};

/// (De)serialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Result alias using [`Error`].
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value to a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Serializes a value to JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Deserializes a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at offset {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

/// Deserializes a value from JSON bytes.
pub fn from_slice<T: Deserialize>(b: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(b).map_err(|e| Error(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => {
            if n.is_finite() {
                out.push_str(&n.to_string());
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Obj(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(Error(format!(
                "unexpected character `{}` at offset {}",
                b as char, self.pos
            ))),
            None => Err(Error("unexpected end of input".into())),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at offset {}", self.pos)))
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| Error(format!("invalid number `{text}` at offset {start}")))
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            let cp = self.parse_hex4()?;
                            // Surrogate pairs for astral-plane characters.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                self.expect_escape_u()?;
                                let lo = self.parse_hex4()?;
                                let combined =
                                    0x10000 + ((cp - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                char::from_u32(combined)
                                    .ok_or_else(|| Error("invalid surrogate pair".into()))?
                            } else {
                                char::from_u32(cp)
                                    .ok_or_else(|| Error("invalid \\u escape".into()))?
                            };
                            out.push(c);
                            continue; // parse_hex4 already advanced past the digits
                        }
                        other => {
                            return Err(Error(format!("invalid escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (multi-byte safe: operate
                    // on the str slice).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|e| Error(format!("invalid UTF-8: {e}")))?;
                    let c = rest.chars().next().expect("peeked a byte");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn expect_escape_u(&mut self) -> Result<()> {
        // Consume the low surrogate's `\`, leaving `pos` on the `u` for
        // the next `parse_hex4` call.
        self.expect(b'\\')
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        // Called with `pos` on the `u`; consume it plus 4 hex digits.
        self.pos += 1;
        let digits = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error("truncated \\u escape".into()))?;
        let s = std::str::from_utf8(digits).map_err(|_| Error("invalid \\u escape".into()))?;
        let cp = u32::from_str_radix(s, 16).map_err(|_| Error("invalid \\u escape".into()))?;
        self.pos += 4;
        Ok(cp)
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at offset {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => {
                    return Err(Error(format!(
                        "expected `,` or `}}` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2");
        assert_eq!(from_str::<f64>("2").unwrap(), 2.0);
        assert_eq!(from_str::<f64>("-1.25e2").unwrap(), -125.0);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<Option<f64>>("null").unwrap(), None);
        assert_eq!(from_str::<u32>(" 42 ").unwrap(), 42);
        assert!(from_str::<u32>("42 junk").is_err());
    }

    #[test]
    fn string_escapes() {
        let s = String::from("a\"b\\c\nd\te\u{1F600}");
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
        assert_eq!(from_str::<String>(r#""A😀""#).unwrap(), "A\u{1F600}");
        assert!(from_str::<String>(r#""unterminated"#).is_err());
    }

    #[test]
    fn containers() {
        let v = vec![1.0f64, 2.5, -3.0];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,2.5,-3]");
        assert_eq!(from_str::<Vec<f64>>(&json).unwrap(), v);
        assert_eq!(from_str::<Vec<f64>>("[]").unwrap(), Vec::<f64>::new());
        assert!(from_str::<Vec<f64>>("[1,]").is_err());
        assert!(from_str::<Vec<f64>>("{]").is_err());
    }

    #[test]
    fn f64_shortest_roundtrip() {
        for x in [0.1, 1.0 / 3.0, f64::MAX, f64::MIN_POSITIVE, -0.0] {
            let json = to_string(&x).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} -> {json} -> {back}");
        }
        // Non-finite numbers degrade to null, like upstream serde_json.
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }
}
