//! Vendored, offline subset of the `proptest` API.
//!
//! Supports the idioms this workspace's property tests use: the
//! [`proptest!`] macro with an optional `#![proptest_config(...)]` header,
//! range and tuple strategies, `prop::collection::vec`, `prop::bool::ANY`,
//! [`any`], `.prop_map`, and the `prop_assert!` / `prop_assert_eq!`
//! macros. Cases are generated from a deterministic per-test seed (an FNV
//! hash of the test name mixed with the case index), so failures are
//! reproducible; there is no shrinking — the failing inputs are printed by
//! the assertion message instead.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

pub use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Test-runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values of an associated type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, f64);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

/// Types with a canonical "any value" strategy (upstream `Arbitrary`).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen()
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen()
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        // Finite values spanning a wide range of magnitudes.
        let mag: f64 = rng.gen_range(-300.0f64..300.0);
        let sign = if rng.gen::<bool>() { 1.0 } else { -1.0 };
        sign * 10f64.powf(mag / 10.0)
    }
}

/// Strategy over all values of `T` (see [`Arbitrary`]).
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — unconstrained values of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Length specification for [`vec()`]: a fixed size or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of values drawn from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `vec(element, size)` — vectors with the given element strategy and
    /// length (a fixed `usize` or a `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Boolean strategies (`prop::bool`).
pub mod bool {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Strategy over both booleans.
    pub struct AnyBool;

    /// Either boolean, uniformly.
    pub const ANY: AnyBool = AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;

        fn generate(&self, rng: &mut StdRng) -> bool {
            rng.gen()
        }
    }
}

/// Deterministic per-test RNG: FNV-1a of the test name mixed with the case
/// index. Exposed for the [`proptest!`] macro expansion.
#[doc(hidden)]
pub fn __rng_for_case(test_name: &str, case: u32) -> StdRng {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    StdRng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64))
}

/// Defines property tests: each `fn name(pattern in strategy, ...) { .. }`
/// becomes a `#[test]` running the body over random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); ) => {};
    (($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::__rng_for_case(stringify!($name), __case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_items!{ ($cfg); $($rest)* }
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// The glob-importable prelude, as in upstream proptest.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy,
    };

    /// Namespace mirroring upstream's `prop::` re-exports.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn shape() -> impl Strategy<Value = (usize, usize)> {
        (1usize..5, 1usize..5)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3usize..10, y in -2.0f64..2.0, z in 0u64..5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
            prop_assert!(z < 5);
        }

        #[test]
        fn tuple_patterns_work((r, c) in shape(), seed in 0u64..100) {
            prop_assert!((1..5).contains(&r));
            prop_assert!((1..5).contains(&c));
            prop_assert!(seed < 100);
        }

        #[test]
        fn vec_and_map_strategies(
            v in prop::collection::vec(0.0f64..1.0, 10),
            w in prop::collection::vec(any::<u8>(), 0..5),
            flag in prop::bool::ANY,
            mapped in (0usize..3).prop_map(|n| n * 2),
        ) {
            prop_assert_eq!(v.len(), 10);
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
            prop_assert!(w.len() < 5);
            let _ = flag; // drawn but unconstrained
            prop_assert!(mapped % 2 == 0 && mapped <= 4);
        }
    }

    #[test]
    fn deterministic_rng_per_test_name() {
        use crate::Strategy;
        let mut a = crate::__rng_for_case("t", 3);
        let mut b = crate::__rng_for_case("t", 3);
        assert_eq!((0u64..100).generate(&mut a), (0u64..100).generate(&mut b));
    }
}
