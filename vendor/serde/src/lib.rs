//! Vendored, offline subset of the `serde` API.
//!
//! The build environment has no registry access, so this crate provides a
//! minimal self-consistent serialization framework under the familiar
//! names: `Serialize` / `Deserialize` traits plus same-named derive macros
//! (from the sibling `serde_derive` shim). Instead of upstream serde's
//! visitor architecture, values round-trip through an owned JSON-like
//! [`Value`] tree; the `serde_json` shim prints/parses that tree. The
//! derive output uses serde_json's *externally tagged* enum representation
//! and plain field-name objects for structs, so documents look like the
//! ones upstream serde_json would produce.

#![forbid(unsafe_code)]

use std::collections::HashMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// An owned JSON-like value tree: the interchange format between
/// [`Serialize`], [`Deserialize`], and the `serde_json` shim.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number (all numbers are `f64`, as in JavaScript).
    Num(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Arr(Vec<Value>),
    /// JSON object (insertion-ordered).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an object, or errors.
    pub fn field(&self, name: &str) -> Result<&Value, DeError> {
        match self {
            Value::Obj(fields) => fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| DeError(format!("missing field `{name}`"))),
            other => Err(DeError(format!(
                "expected object with field `{name}`, found {}",
                other.kind()
            ))),
        }
    }

    /// Human-readable name of the value's kind (for error messages).
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }
}

/// Deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Conversion into the [`Value`] tree.
pub trait Serialize {
    /// Serializes `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Conversion from the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserializes an instance from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError(format!("expected bool, found {}", other.kind()))),
        }
    }
}

macro_rules! impl_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Num(n) => {
                        let cast = *n as $t;
                        // Reject values that do not round-trip (fractional
                        // or out-of-range for the integer types).
                        if (cast as f64 - *n).abs() < 1e-9 {
                            Ok(cast)
                        } else {
                            Err(DeError(format!(
                                "number {n} out of range for {}",
                                stringify!($t)
                            )))
                        }
                    }
                    other => Err(DeError(format!(
                        "expected number, found {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError(format!("expected string, found {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            // Deserializing into &'static str requires owned storage; the
            // workspace only does this for a handful of short region names
            // in tests, so the leak is bounded and acceptable.
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => Err(DeError(format!("expected string, found {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(t) => t.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(|t| t.to_value()).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError(format!("expected array, found {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(|t| t.to_value()).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(|t| t.to_value()).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::from_value(v)?;
        let got = items.len();
        items
            .try_into()
            .map_err(|_| DeError(format!("expected array of length {N}, found {got}")))
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Arr(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Arr(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(DeError(format!("expected 2-tuple, found {}", other.kind()))),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Arr(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Arr(items) if items.len() == 3 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
            )),
            other => Err(DeError(format!("expected 3-tuple, found {}", other.kind()))),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0)); // deterministic output
        Value::Obj(fields)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Obj(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(DeError(format!("expected object, found {}", other.kind()))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrips() {
        assert_eq!(u32::from_value(&7u32.to_value()).unwrap(), 7);
        assert_eq!(f64::from_value(&2.5f64.to_value()).unwrap(), 2.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&String::from("hi").to_value()).unwrap(),
            "hi"
        );
        assert!(u32::from_value(&Value::Num(1.5)).is_err());
        assert!(u32::from_value(&Value::Str("x".into())).is_err());
    }

    #[test]
    fn container_roundtrips() {
        let v = vec![1.0f64, 2.0, 3.0];
        assert_eq!(Vec::<f64>::from_value(&v.to_value()).unwrap(), v);
        let o: Option<f64> = Some(4.0);
        assert_eq!(Option::<f64>::from_value(&o.to_value()).unwrap(), o);
        assert_eq!(Option::<f64>::from_value(&Value::Null).unwrap(), None);
        let t = (1.0f64, 2.0f64);
        assert_eq!(<(f64, f64)>::from_value(&t.to_value()).unwrap(), t);
        let a = [1.0f64, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(<[f64; 5]>::from_value(&a.to_value()).unwrap(), a);
        assert!(<[f64; 5]>::from_value(&vec![1.0f64].to_value()).is_err());
    }

    #[test]
    fn field_lookup() {
        let v = Value::Obj(vec![("a".into(), Value::Num(1.0))]);
        assert_eq!(v.field("a").unwrap(), &Value::Num(1.0));
        assert!(v.field("b").is_err());
        assert!(Value::Null.field("a").is_err());
    }
}
