//! Vendored, offline subset of the `criterion` benchmarking API.
//!
//! Implements the calling convention the workspace's benches use —
//! `criterion_group!` / `criterion_main!`, `Criterion::benchmark_group`,
//! `sample_size`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `Bencher::iter`, `black_box` — over a compact measurement loop:
//! each sample times a batch of iterations sized so one sample takes
//! roughly `target_sample_ms`, and the reported statistics are computed
//! over the per-iteration sample means.
//!
//! Results print as a table and, when the `CRITERION_JSON` environment
//! variable names a file, are also written as a JSON array of
//! `{group, bench, mean_ns, median_ns, min_ns, samples, iters_per_sample}`
//! records — the hook the repo's `scripts/run_benches.sh` uses to build
//! the committed `BENCH_*.json` trajectory files. Benches that declare
//! their per-iteration work via [`BenchmarkGroup::throughput`]
//! ([`Throughput::Flops`]) additionally get a `gflops` field (median
//! throughput) in both the table and the JSON.
//!
//! Environment knobs:
//! * `CRITERION_JSON=path` — append JSON records to `path`.
//! * `CRITERION_SAMPLE_MS=n` — target milliseconds per sample (default 50).
//! * `CRITERION_QUICK=1` — cap samples at 10 and the batch target at 10 ms
//!   (used by CI smoke runs).

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::io::Write as _;
use std::time::Instant;

/// Opaque-to-the-optimizer value laundering.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// One benchmark's measurement summary.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Group name (empty for ungrouped benches).
    pub group: String,
    /// Benchmark id within the group.
    pub bench: String,
    /// Mean nanoseconds per iteration.
    pub mean_ns: f64,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
    /// Fastest sample's nanoseconds per iteration.
    pub min_ns: f64,
    /// Number of samples taken.
    pub samples: usize,
    /// Iterations per sample batch.
    pub iters_per_sample: u64,
    /// Declared floating-point operations per iteration
    /// ([`BenchmarkGroup::throughput`]), if any.
    pub flops: Option<u64>,
}

impl BenchRecord {
    /// Median throughput in GFLOPS (`flops / median_ns`, since flops per
    /// nanosecond ≡ 10⁹ flops per second), when a flop count was declared.
    pub fn gflops(&self) -> Option<f64> {
        self.flops
            .map(|f| f as f64 / self.median_ns.max(f64::MIN_POSITIVE))
    }
}

/// Declared per-iteration work, attached to the benches that follow via
/// [`BenchmarkGroup::throughput`] (subset of the real criterion API,
/// extended with an explicit flop count for GFLOPS reporting).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Floating-point operations per iteration; reported as GFLOPS in the
    /// table and as a `gflops` field in the JSON records.
    Flops(u64),
}

/// Identifier for a benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` id.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Id that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark id (`&str` or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The id string.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Timing loop handle passed to bench closures.
pub struct Bencher {
    iters: u64,
    elapsed_ns: f64,
}

impl Bencher {
    /// Times `iters` calls of `f`, recording total elapsed time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed_ns = start.elapsed().as_nanos() as f64;
    }
}

fn quick_mode() -> bool {
    std::env::var("CRITERION_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

fn target_sample_ms() -> f64 {
    let base = std::env::var("CRITERION_SAMPLE_MS")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(50.0);
    if quick_mode() {
        base.min(10.0)
    } else {
        base
    }
}

/// Runs one benchmark: calibrates a batch size, then takes samples.
fn run_bench<F: FnMut(&mut Bencher)>(
    group: &str,
    bench: &str,
    sample_size: usize,
    flops: Option<u64>,
    mut f: F,
) -> BenchRecord {
    // Calibrate: grow the iteration count until one batch is long enough
    // to time reliably.
    let target_ns = target_sample_ms() * 1e6;
    let mut iters: u64 = 1;
    let mut per_iter_ns;
    loop {
        let mut b = Bencher {
            iters,
            elapsed_ns: 0.0,
        };
        f(&mut b);
        per_iter_ns = b.elapsed_ns / iters as f64;
        if b.elapsed_ns >= target_ns / 4.0 || iters >= 1 << 24 {
            break;
        }
        // Aim directly for the target, conservatively.
        let scale = (target_ns / b.elapsed_ns.max(1.0)).clamp(2.0, 64.0);
        iters = ((iters as f64) * scale).ceil() as u64;
    }
    iters = ((target_ns / per_iter_ns.max(1.0)).ceil() as u64).clamp(1, 1 << 24);

    let samples = if quick_mode() {
        sample_size.min(10)
    } else {
        sample_size
    }
    .max(3);
    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed_ns: 0.0,
        };
        f(&mut b);
        per_iter.push(b.elapsed_ns / iters as f64);
    }
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let median = per_iter[per_iter.len() / 2];
    let record = BenchRecord {
        group: group.to_string(),
        bench: bench.to_string(),
        mean_ns: mean,
        median_ns: median,
        min_ns: per_iter[0],
        samples,
        iters_per_sample: iters,
        flops,
    };
    let label = if group.is_empty() {
        bench.to_string()
    } else {
        format!("{group}/{bench}")
    };
    let gflops = match record.gflops() {
        Some(g) => format!("  {g:7.2} GFLOPS"),
        None => String::new(),
    };
    eprintln!(
        "{label:<50} {:>12} /iter{gflops}  (median {}, {samples} samples x {iters} iters)",
        format_ns(mean),
        format_ns(median)
    );
    record
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// The benchmark harness: collects results across groups.
#[derive(Default)]
pub struct Criterion {
    results: Vec<BenchRecord>,
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 30,
            throughput: None,
        }
    }

    /// Benches an ungrouped function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let record = run_bench("", &id.into_id(), 30, None, f);
        self.results.push(record);
        self
    }

    /// All records measured so far.
    pub fn results(&self) -> &[BenchRecord] {
        &self.results
    }

    /// Writes the JSON report if `CRITERION_JSON` is set. Called by
    /// [`criterion_main!`] after all groups have run.
    pub fn final_summary(&self) {
        let Ok(path) = std::env::var("CRITERION_JSON") else {
            return;
        };
        if path.is_empty() {
            return;
        }
        let mut out = String::from("[\n");
        for (i, r) in self.results.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            let gflops = match r.gflops() {
                Some(g) => format!(", \"gflops\": {g:.3}"),
                None => String::new(),
            };
            out.push_str(&format!(
                "  {{\"group\": \"{}\", \"bench\": \"{}\", \"mean_ns\": {:.1}, \
                 \"median_ns\": {:.1}, \"min_ns\": {:.1}, \"samples\": {}, \
                 \"iters_per_sample\": {}{gflops}}}",
                r.group.replace('"', "'"),
                r.bench.replace('"', "'"),
                r.mean_ns,
                r.median_ns,
                r.min_ns,
                r.samples,
                r.iters_per_sample
            ));
        }
        out.push_str("\n]\n");
        match std::fs::File::create(&path).and_then(|mut fh| fh.write_all(out.as_bytes())) {
            Ok(()) => eprintln!("criterion: wrote {} records to {path}", self.results.len()),
            Err(e) => eprintln!("criterion: failed to write {path}: {e}"),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Declares the per-iteration work of the benches that follow (until
    /// the next `throughput` call); call before each size's benches when
    /// iterating over inputs.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    fn flops(&self) -> Option<u64> {
        self.throughput.map(|Throughput::Flops(f)| f)
    }

    /// Benches `f` under the given id.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let record = run_bench(&self.name, &id.into_id(), self.sample_size, self.flops(), f);
        self.criterion.results.push(record);
        self
    }

    /// Benches `f` with a borrowed input under the given id.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let record = run_bench(&self.name, &id.id, self.sample_size, self.flops(), |b| {
            f(b, input)
        });
        self.criterion.results.push(record);
        self
    }

    /// Ends the group (kept for API compatibility; results are recorded
    /// eagerly).
    pub fn finish(self) {}
}

/// Declares a benchmark group function calling each bench in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($bench_fn:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $( $bench_fn(c); )+
        }
    };
}

/// Declares the bench binary's `main`, running each group then writing the
/// optional JSON report.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_ids_format() {
        assert_eq!(BenchmarkId::new("matmul", 512).id, "matmul/512");
        assert_eq!(BenchmarkId::from_parameter(64).id, "64");
    }

    #[test]
    fn measurement_runs_and_records() {
        std::env::set_var("CRITERION_SAMPLE_MS", "1");
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(5);
            g.throughput(Throughput::Flops(200));
            g.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
                b.iter(|| (0..n).sum::<u64>())
            });
            g.finish();
        }
        c.bench_function("free", |b| b.iter(|| black_box(1 + 1)));
        assert_eq!(c.results().len(), 2);
        assert!(c.results()[0].mean_ns > 0.0);
        assert_eq!(c.results()[0].group, "g");
        assert_eq!(c.results()[0].bench, "sum/100");
        assert_eq!(c.results()[0].flops, Some(200));
        assert!(c.results()[0].gflops().unwrap() > 0.0);
        assert_eq!(c.results()[1].group, "");
        assert_eq!(c.results()[1].flops, None);
        std::env::remove_var("CRITERION_SAMPLE_MS");
    }
}
