//! Vendored, offline subset of the `rand` crate API.
//!
//! The build environment for this repository has no access to a crate
//! registry, so the workspace carries the minimal random-number surface it
//! actually uses: a seedable `StdRng` (xoshiro256++ seeded by SplitMix64),
//! `Rng::{gen, gen_range, gen_bool}`, and `seq::SliceRandom::shuffle`.
//! The stream is deterministic per seed and stable across platforms, but it
//! is **not** the upstream `StdRng` stream — seeds reproduce results within
//! this workspace only.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of an RNG from seed material.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`] (the upstream `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from the generator.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u8 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)` (53-bit mantissa).
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8);

macro_rules! signed_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = hi.wrapping_sub(lo) as u64;
                if span == u64::MAX {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}

signed_sample_range!(isize, i64, i32, i16, i8);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let v = self.start + (self.end - self.start) * unit_f64(rng.next_u64());
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + (hi - lo) * unit_f64(rng.next_u64())
    }
}

impl SampleRange<f32> for Range<f32> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let r: f64 = ((self.start as f64)..(self.end as f64)).sample(rng);
        r as f32
    }
}

/// High-level convenience methods, blanket-implemented for every RNG.
pub trait Rng: RngCore {
    /// Uniform value from `range`.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        unit_f64(self.next_u64()) < p
    }

    /// Draws a value of a [`Standard`]-samplable type.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ (Blackman & Vigna),
    /// seeded via SplitMix64. Fast, high-quality, dependency-free.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling (Fisher–Yates).
    pub trait SliceRandom {
        /// Uniformly permutes the slice in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(-2.5f64..2.5);
            assert!((-2.5..2.5).contains(&y));
            let z = rng.gen_range(0usize..=4);
            assert!(z <= 4);
            let w = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes_and_mean() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the identity permutation");
    }

    #[test]
    fn unit_f64_in_range() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
