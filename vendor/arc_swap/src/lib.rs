//! Vendored, offline subset of the `arc-swap` API.
//!
//! One type: [`ArcSwap<T>`], an atomically swappable `Arc<T>` cell whose
//! read side is wait-free with respect to writers — a reader never takes
//! a lock, so a writer publishing a new value can never block readers the
//! way an `RwLock<Arc<T>>` write acquisition does.
//!
//! # Algorithm
//!
//! A two-slot cell with per-slot reader pin counts:
//!
//! * Each slot holds an `Arc<T>`; `current` names the live slot (0/1).
//! * **Readers** pin the slot they saw in `current` (increment its pin
//!   count), re-check that `current` still names it (retrying if a writer
//!   flipped in between), clone the `Arc`, and unpin. The critical
//!   section is three atomic RMW/loads plus one `Arc` clone.
//! * **Writers** serialize on an internal mutex, install the new `Arc`
//!   into the *non-current* slot, and flip `current`. Before touching the
//!   non-current slot they wait for its pin count to drain — any pins on
//!   it belong to readers that lost the re-check race and are about to
//!   retry, so the wait is bounded by nanoseconds, not by how long a
//!   reader *holds* the loaded `Arc` (the clone already happened).
//!
//! The pin / flip pair uses `SeqCst` on both sides (the store-buffer
//! litmus: either the reader observes the new `current` and retries, or
//! the writer observes the reader's pin and waits). Every load returns an
//! `Arc` that was stored by some `store` (or the initial value) — torn
//! values are impossible because the slot content is only replaced while
//! provably unobserved.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// One slot of the double buffer: a pin count and the value it guards.
struct Slot<T> {
    readers: AtomicUsize,
    value: UnsafeCell<Arc<T>>,
}

/// An `Arc<T>` holder that can be atomically read and replaced: readers
/// get a cheap `Arc` clone without locking, writers swap the pointer
/// without ever blocking readers.
pub struct ArcSwap<T> {
    /// Index (0/1) of the slot readers should pin.
    current: AtomicUsize,
    slots: [Slot<T>; 2],
    /// Serializes writers (readers never touch it).
    writer: Mutex<()>,
}

// SAFETY: the pin-count protocol guarantees a slot's `UnsafeCell` is only
// written while no reader is pinned on it and only read while pinned, so
// sharing across threads is sound whenever `Arc<T>` itself is sendable —
// i.e. `T: Send + Sync`.
unsafe impl<T: Send + Sync> Send for ArcSwap<T> {}
unsafe impl<T: Send + Sync> Sync for ArcSwap<T> {}

impl<T> ArcSwap<T> {
    /// Creates a cell holding `initial`.
    pub fn new(initial: Arc<T>) -> Self {
        ArcSwap {
            current: AtomicUsize::new(0),
            slots: [
                Slot {
                    readers: AtomicUsize::new(0),
                    value: UnsafeCell::new(initial.clone()),
                },
                Slot {
                    readers: AtomicUsize::new(0),
                    value: UnsafeCell::new(initial),
                },
            ],
            writer: Mutex::new(()),
        }
    }

    /// Loads the current value (an `Arc` clone). Lock-free: at most a few
    /// retries while a concurrent `store` flips the slot index.
    pub fn load(&self) -> Arc<T> {
        loop {
            let idx = self.current.load(Ordering::SeqCst);
            let slot = &self.slots[idx];
            // Pin before re-checking: SeqCst pairs with the writer's
            // SeqCst flip + drain check, so either we see the flip (and
            // retry) or the writer sees our pin (and waits).
            slot.readers.fetch_add(1, Ordering::SeqCst);
            if self.current.load(Ordering::SeqCst) == idx {
                // SAFETY: the slot is pinned and `current` still names
                // it, so no writer may replace its content until the
                // unpin below.
                let value = unsafe { (*slot.value.get()).clone() };
                slot.readers.fetch_sub(1, Ordering::Release);
                return value;
            }
            // A writer flipped between the load and the pin: unpin the
            // stale slot (a draining writer may be waiting on us).
            slot.readers.fetch_sub(1, Ordering::Release);
        }
    }

    /// Publishes `new`, replacing the current value. Readers that loaded
    /// before the flip keep their `Arc`; readers after it see `new`.
    pub fn store(&self, new: Arc<T>) {
        let _guard = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        let next = 1 - self.current.load(Ordering::Relaxed);
        let slot = &self.slots[next];
        // Drain stragglers pinned on the non-current slot: they lost the
        // re-check race and will unpin without dereferencing, so this
        // spin is bounded by a few instructions per reader.
        while slot.readers.load(Ordering::SeqCst) != 0 {
            std::hint::spin_loop();
        }
        // SAFETY: the slot is non-current and its pin count was observed
        // at zero after the last flip (SeqCst), so no reader holds or can
        // acquire a reference into it before `current` names it again.
        unsafe {
            *slot.value.get() = new;
        }
        self.current.store(next, Ordering::SeqCst);
    }

    /// Alias of [`ArcSwap::load`], matching the upstream name for the
    /// owned-`Arc` variant.
    pub fn load_full(&self) -> Arc<T> {
        self.load()
    }
}

impl<T> std::fmt::Debug for ArcSwap<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArcSwap").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn load_returns_stored_value() {
        let cell = ArcSwap::new(Arc::new(1u64));
        assert_eq!(*cell.load(), 1);
        cell.store(Arc::new(2));
        assert_eq!(*cell.load(), 2);
        assert_eq!(*cell.load_full(), 2);
        // Old Arcs held by readers stay valid across stores.
        let held = cell.load();
        cell.store(Arc::new(3));
        assert_eq!(*held, 2);
        assert_eq!(*cell.load(), 3);
    }

    #[test]
    fn drops_both_slots() {
        // Initial value lives in both slots; one store replaces one slot.
        let probe = Arc::new(41u32);
        let cell = ArcSwap::new(probe.clone());
        cell.store(Arc::new(42));
        drop(cell);
        assert_eq!(Arc::strong_count(&probe), 1, "cell must drop its clones");
    }

    #[test]
    fn concurrent_loads_see_only_stored_values() {
        // Writers publish strictly increasing values; readers must only
        // ever observe published values, and values must not tear.
        let cell = ArcSwap::new(Arc::new(0u64));
        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let mut last = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let v = *cell.load();
                        assert!(v >= last, "monotone writes observed out of order");
                        last = v;
                    }
                });
            }
            scope.spawn(|| {
                for v in 1..=10_000u64 {
                    cell.store(Arc::new(v));
                }
                stop.store(true, Ordering::Relaxed);
            });
        });
        assert_eq!(*cell.load(), 10_000);
    }
}
