//! End-to-end IDES service over the simulated wire protocol.
//!
//! Unlike the other examples (which call the solver library directly),
//! this one exercises the full §5.1 protocol: the joining host talks to
//! the information server and the landmarks through framed messages over
//! a discrete-event network, pings carry real (simulated) latency, and
//! the join's wall-clock cost comes out in simulated milliseconds.
//!
//! Run with: `cargo run --release --example ides_service`

use std::sync::Arc;

use ides::protocol::simulate_join;
use ides::system::{IdesConfig, InformationServer};
use ides_datasets::generators::nlanr_like;
use ides_datasets::DistanceMatrix;
use ides_linalg::Matrix;

fn main() {
    let ds = nlanr_like(80, 13).expect("dataset generation");
    let topo = &ds.topology;

    // Landmarks 0..20; the information server factors their RTT matrix.
    let landmark_hosts: Vec<usize> = (0..20).collect();
    let lm_values = Matrix::from_fn(20, 20, |i, j| {
        topo.host_rtt(landmark_hosts[i], landmark_hosts[j])
    });
    let lm = DistanceMatrix::full("landmarks", lm_values).expect("landmark matrix");
    let server = Arc::new(InformationServer::build(&lm, IdesConfig::new(8)).expect("server"));
    println!(
        "information server ready: 20 landmarks factored at d = {}",
        server.dim()
    );

    // Three ordinary hosts join over the wire, 3 ping probes per landmark.
    let mut joined = Vec::new();
    for &host in &[30usize, 45, 60] {
        let outcome =
            simulate_join(topo, server.clone(), &landmark_hosts, host, 3).expect("protocol join");
        println!(
            "host {host} joined in {:.1} simulated ms using {} messages",
            outcome.elapsed_ms, outcome.messages
        );
        joined.push((host, outcome.vectors));
    }

    // Hosts now predict their mutual distances without any probes.
    println!("\npairwise predictions (never measured):");
    for i in 0..joined.len() {
        for j in 0..joined.len() {
            if i == j {
                continue;
            }
            let (hi, vi) = &joined[i];
            let (hj, vj) = &joined[j];
            let predicted = vi.distance_to_host(vj);
            let actual = topo.host_rtt(*hi, *hj);
            let rel = (predicted - actual).abs() / actual;
            println!(
                "  {hi} -> {hj}: predicted {predicted:7.2} ms, actual {actual:7.2} ms ({:+.1}%)",
                rel * 100.0 * (predicted - actual).signum()
            );
            assert!(rel < 0.6, "prediction off by {rel:.2}");
        }
    }
    println!("\nides_service OK");
}
