//! Mirror selection — the motivating CDN application from §1 and §3.
//!
//! A content distribution network runs a handful of mirror servers; each
//! client wants the mirror with the lowest latency *without probing them
//! all*. With IDES, the client retrieves the mirrors' outgoing vectors
//! from the information server, dots them with its own incoming vector,
//! and picks the smallest estimate.
//!
//! This example measures how good those picks are on a 300-host synthetic
//! Internet: how often IDES picks the true best mirror, and how much
//! latency the occasional wrong pick costs (the "penalty" or stretch).
//!
//! Run with: `cargo run --release --example mirror_selection`

use ides::system::{select_random_landmarks, IdesConfig, InformationServer};
use ides_datasets::generators::plrtt_like;
use ides_datasets::DistanceMatrix;
use ides_linalg::Matrix;

fn main() {
    let n = 300;
    let ds = plrtt_like(n, 7).expect("dataset generation");
    let topo = &ds.topology;

    // 20 random landmarks anchor the coordinate system.
    let landmarks = select_random_landmarks(n, 20, 42);
    let lm_values = Matrix::from_fn(20, 20, |i, j| topo.host_rtt(landmarks[i], landmarks[j]));
    let lm = DistanceMatrix::full("landmarks", lm_values).expect("landmark matrix");
    let server = InformationServer::build(&lm, IdesConfig::new(8)).expect("server build");

    // 5 mirrors and 150 clients, all ordinary hosts.
    let non_landmarks: Vec<usize> = (0..n).filter(|h| !landmarks.contains(h)).collect();
    let mirrors = &non_landmarks[..5];
    let clients = &non_landmarks[5..155];

    // Everyone joins by measuring the landmarks once.
    let join = |h: usize| {
        let d_out: Vec<f64> = landmarks.iter().map(|&l| topo.host_rtt(h, l)).collect();
        server.join(&d_out, &d_out).expect("host join")
    };
    let mirror_vectors: Vec<_> = mirrors.iter().map(|&m| join(m)).collect();

    let mut correct = 0usize;
    let mut total_true_best = 0.0;
    let mut total_chosen = 0.0;
    let mut worst_stretch: f64 = 1.0;
    for &c in clients {
        let cv = join(c);
        // Client-side selection: smallest dot product wins (no probing!).
        let chosen = (0..mirrors.len())
            .min_by(|&a, &b| {
                let da = cv.distance_to(&mirror_vectors[a].incoming);
                let db = cv.distance_to(&mirror_vectors[b].incoming);
                da.partial_cmp(&db).expect("finite estimates")
            })
            .expect("at least one mirror");
        // Ground truth for scoring only.
        let best = (0..mirrors.len())
            .min_by(|&a, &b| {
                topo.host_rtt(c, mirrors[a])
                    .partial_cmp(&topo.host_rtt(c, mirrors[b]))
                    .expect("finite RTTs")
            })
            .expect("at least one mirror");
        let true_best = topo.host_rtt(c, mirrors[best]);
        let got = topo.host_rtt(c, mirrors[chosen]);
        if chosen == best {
            correct += 1;
        }
        total_true_best += true_best;
        total_chosen += got;
        worst_stretch = worst_stretch.max(got / true_best.max(1e-9));
    }

    let accuracy = correct as f64 / clients.len() as f64;
    let mean_stretch = total_chosen / total_true_best;
    println!(
        "mirror selection over {} clients, {} mirrors, 20 landmarks, d=8",
        clients.len(),
        mirrors.len()
    );
    println!(
        "  picked the true closest mirror: {:.1}% of clients",
        accuracy * 100.0
    );
    println!("  mean latency stretch vs oracle: {mean_stretch:.3}x");
    println!("  worst single-client stretch:    {worst_stretch:.2}x");
    println!("  measurement cost per client:    20 landmark probes (vs {} for probing all mirrors of a big CDN)", mirrors.len());

    assert!(
        accuracy > 0.5,
        "selection should beat random guessing by far"
    );
    assert!(
        mean_stretch < 1.5,
        "average chosen mirror should be near-optimal"
    );
    println!("\nmirror_selection OK");
}
