//! Quickstart: factor a distance matrix, join a new host, predict.
//!
//! Walks through the paper's own worked example (Figures 1 and 4):
//! a 4-host ring network whose distance matrix has no exact Euclidean
//! embedding but factors exactly at rank 3, then two ordinary hosts that
//! join from landmark measurements and predict their mutual distance
//! without ever measuring it.
//!
//! Run with: `cargo run --release --example quickstart`

use ides::system::{IdesConfig, InformationServer};
use ides_datasets::DistanceMatrix;
use ides_mf::model::DistanceEstimator;
use ides_mf::svd_model::{fit_matrix, SvdConfig};
use ides_netsim::topology::figure1_distance_matrix;

fn main() {
    // --- 1. The distance matrix of Figure 1 -----------------------------
    // Four hosts in a ring, unit edges: D[0][3] = 2 hops, etc. No Euclidean
    // embedding of any dimension reproduces it, but SVD factors it exactly.
    let d = figure1_distance_matrix();
    println!("distance matrix D =\n{d:?}\n");

    // --- 2. Factor D = X Yᵀ at rank 3 (exact: the 4th singular value is 0)
    let model = fit_matrix(
        &d,
        SvdConfig {
            dim: 3,
            force_exact: true,
        },
    )
    .expect("svd fit");
    println!("outgoing vectors X =\n{:?}", model.x());
    println!("incoming vectors Y =\n{:?}", model.y());
    let recon_err = (&model.reconstruct() - &d).frobenius_norm();
    println!("reconstruction error ‖XYᵀ − D‖_F = {recon_err:.2e}\n");
    assert!(recon_err < 1e-9);

    // The estimated distance from host i to j is the dot product X_i · Y_j:
    println!("estimated D[0][3] = {:.3} (true 2)", model.estimate(0, 3));

    // --- 3. Stand up the IDES information server ------------------------
    let landmarks = DistanceMatrix::full("figure-1 landmarks", d).expect("valid matrix");
    let server = InformationServer::build(&landmarks, IdesConfig::new(3)).expect("server");

    // --- 4. Ordinary hosts join by measuring the landmarks --------------
    // H1 sits on the left edge of the ring (Figure 4): distances to the
    // four landmarks are [0.5, 1.5, 1.5, 2.5]. H2 mirrors it on the right.
    let h1 = server
        .join(&[0.5, 1.5, 1.5, 2.5], &[0.5, 1.5, 1.5, 2.5])
        .expect("join H1");
    let h2 = server
        .join(&[2.5, 1.5, 1.5, 0.5], &[2.5, 1.5, 1.5, 0.5])
        .expect("join H2");

    // --- 5. Predict the unmeasured H1–H2 distance -----------------------
    let predicted = h1.distance_to_host(&h2);
    println!("predicted H1→H2 distance = {predicted:.3} ms (true 3.0, paper predicts 3.25)");
    assert!((predicted - 3.25).abs() < 1e-9);

    println!("\nquickstart OK");
}
