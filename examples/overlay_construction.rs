//! Topology-aware overlay construction — the DHT/overlay application
//! from §1.
//!
//! Peer-to-peer overlays want each node's neighbor set to prefer peers
//! that are close in the IP underlay. Probing every candidate is O(n²)
//! measurements; IDES gives every node a coordinate after O(landmarks)
//! probes, and neighbor selection becomes a local dot-product ranking.
//!
//! The example builds a 400-node overlay where each node picks its k=5
//! nearest peers (a) by IDES estimates and (b) by true RTT (oracle), and
//! compares the resulting neighbor-set quality and the total measurement
//! cost.
//!
//! Run with: `cargo run --release --example overlay_construction`

use ides::projection::HostVectors;
use ides::system::{select_random_landmarks, IdesConfig, InformationServer};
use ides_datasets::generators::p2psim_like;
use ides_datasets::DistanceMatrix;
use ides_linalg::Matrix;

const K: usize = 5;

fn main() {
    let n = 400;
    let ds = p2psim_like(n, 11).expect("dataset generation");
    let topo = &ds.topology;
    let hosts = &ds.row_hosts; // p2psim filters; use surviving hosts
    let n = hosts.len();

    let landmark_ids = select_random_landmarks(n, 20, 3);
    let landmark_hosts: Vec<usize> = landmark_ids.iter().map(|&i| hosts[i]).collect();
    let lm_values = Matrix::from_fn(20, 20, |i, j| {
        topo.host_rtt(landmark_hosts[i], landmark_hosts[j])
    });
    let lm = DistanceMatrix::full("landmarks", lm_values).expect("landmark matrix");
    let server = InformationServer::build(&lm, IdesConfig::new(10)).expect("server build");

    // Every overlay node joins (20 probes each).
    let vectors: Vec<HostVectors> = hosts
        .iter()
        .map(|&h| {
            let d_out: Vec<f64> = landmark_hosts
                .iter()
                .map(|&l| topo.host_rtt(h, l))
                .collect();
            server.join(&d_out, &d_out).expect("host join")
        })
        .collect();

    // Neighbor selection: k smallest estimated RTTs per node.
    let mut stretch_sum = 0.0;
    let mut overlap_sum = 0.0;
    for i in 0..n {
        let mut est: Vec<(usize, f64)> = (0..n)
            .filter(|&j| j != i)
            .map(|j| (j, vectors[i].distance_to_host(&vectors[j])))
            .collect();
        est.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite estimates"));
        let picked: Vec<usize> = est[..K].iter().map(|&(j, _)| j).collect();

        let mut truth: Vec<(usize, f64)> = (0..n)
            .filter(|&j| j != i)
            .map(|j| (j, topo.host_rtt(hosts[i], hosts[j])))
            .collect();
        truth.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite RTTs"));
        let oracle: Vec<usize> = truth[..K].iter().map(|&(j, _)| j).collect();
        let oracle_cost: f64 = truth[..K].iter().map(|&(_, d)| d).sum();
        let picked_cost: f64 = picked
            .iter()
            .map(|&j| topo.host_rtt(hosts[i], hosts[j]))
            .sum();

        stretch_sum += picked_cost / oracle_cost.max(1e-9);
        overlap_sum += picked.iter().filter(|j| oracle.contains(j)).count() as f64 / K as f64;
    }

    let mean_stretch = stretch_sum / n as f64;
    let mean_overlap = overlap_sum / n as f64;
    let ides_probes = n * 20;
    let oracle_probes = n * (n - 1) / 2;
    println!("overlay construction over {n} nodes, k={K} neighbors, 20 landmarks, d=10");
    println!("  neighbor-set latency stretch vs oracle: {mean_stretch:.2}x");
    println!(
        "  overlap with oracle neighbor sets:      {:.1}%",
        mean_overlap * 100.0
    );
    println!("  probes used: {ides_probes} (IDES) vs {oracle_probes} (probe-everything)");

    assert!(
        mean_stretch < 5.0,
        "IDES neighbor sets should be in the oracle's ballpark"
    );
    assert!(
        mean_overlap > 0.2,
        "IDES should recover a meaningful share of true nearest neighbors"
    );
    println!("\noverlay_construction OK");
}
