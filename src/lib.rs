//! Umbrella crate for the IDES reproduction workspace.
//!
//! All functionality lives in the `crates/*` members; this crate exists so
//! the repo-level `examples/` and `tests/` directories can exercise the
//! public APIs of every crate together. Re-exports are provided for
//! convenience.
//!
//! # The `parallel` feature and `IDES_LINALG_THREADS`
//!
//! The `ides` and `ides-linalg` crates expose an off-by-default `parallel`
//! cargo feature. In `ides-linalg` it row-band-parallelizes the blocked
//! GEMM kernels; in `ides` it additionally shards the §6 evaluation sweeps
//! (batched host joins/embeddings plus O(n²) pair scoring) over std scoped
//! threads. `IDES_LINALG_THREADS=N` overrides the detected core count for
//! both. Outputs are bit-identical with the feature on or off and at any
//! thread count: shards partition per-host-independent work and merge in a
//! fixed order. See the workspace `README.md` for usage examples.

#![forbid(unsafe_code)]

pub use ides;
pub use ides_datasets;
pub use ides_linalg;
pub use ides_mf;
pub use ides_netsim;
