//! Umbrella crate for the IDES reproduction workspace.
//!
//! All functionality lives in the `crates/*` members; this crate exists so
//! the repo-level `examples/` and `tests/` directories can exercise the
//! public APIs of every crate together. Re-exports are provided for
//! convenience.

#![forbid(unsafe_code)]

pub use ides;
pub use ides_datasets;
pub use ides_linalg;
pub use ides_mf;
pub use ides_netsim;
